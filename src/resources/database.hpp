// Resource-utilization database for Tables I, II and III.
//
// Vivado synthesis reports cannot be regenerated inside a simulation,
// so utilization numbers are data, not measurements. Every entry is
// tagged with its provenance: kPaperReported for the RV-CAP paper's own
// synthesis results, kLiterature for numbers quoted from related work,
// kModelDerived for quantities our fabric model computes (partition
// sizes, device totals). The bench harnesses aggregate entries the same
// way the paper's tables do — the aggregation identities (e.g. the
// full-SoC row being the sum of its components) are tested.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "resources/resource_vec.hpp"

namespace rvcap::resources {

enum class Source : u8 {
  kPaperReported,  // RV-CAP paper, Tables I/III
  kLiterature,     // related-work papers (Table II)
  kModelDerived,   // computed by this reproduction's fabric model
};

constexpr std::string_view to_string(Source s) {
  switch (s) {
    case Source::kPaperReported: return "paper";
    case Source::kLiterature: return "literature";
    case Source::kModelDerived: return "model";
  }
  return "?";
}

struct Entry {
  std::string name;  // hierarchical, e.g. "rvcap.dma"
  ResourceVec res;
  Source source = Source::kPaperReported;
  std::string note;
};

class ResourceDb {
 public:
  void add(Entry e);
  const Entry* find(std::string_view name) const;

  /// Sum of the named entries (missing names throw std::out_of_range).
  ResourceVec total(std::span<const std::string_view> names) const;

  /// All entries under a hierarchical prefix ("rvcap." ...).
  std::vector<const Entry*> under(std::string_view prefix) const;

  const std::vector<Entry>& entries() const { return entries_; }

  /// The reproduction's database, populated from the paper's tables.
  static ResourceDb paper_database();

 private:
  std::vector<Entry> entries_;
};

/// Percentage utilization of `used` within `available`, per column —
/// the parenthesised percentages of Table III's RM rows.
struct UtilizationPct {
  double luts = 0, ffs = 0, brams = 0, dsps = 0;
};
UtilizationPct utilization_pct(const ResourceVec& used,
                               const ResourceVec& available);

}  // namespace rvcap::resources
