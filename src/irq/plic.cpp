#include "irq/plic.hpp"

#include "obs/trace.hpp"

namespace rvcap::irq {

Plic::Plic(std::string name, u32 num_sources)
    : AxiLiteSlave(std::move(name)),
      level_(num_sources + 1, false),
      pending_(num_sources + 1, false),
      in_flight_(num_sources + 1, false),
      priority_(num_sources + 1, 1),
      enable_(num_sources + 1, false) {}

void Plic::set_source_level(u32 source, bool level) {
  if (source == 0 || source >= level_.size()) return;
  if (level_[source] != level) {
    level_[source] = level;
    RVCAP_TRACE(trace_sink(),
                level ? obs::EventKind::kIrqRaise : obs::EventKind::kIrqLower,
                trace_src(), sim_now(), source);
    wake();
  }
}

bool Plic::device_tick() {
  // Gateways: latch pending on high level unless already in flight.
  bool latched = false;
  for (u32 s = 1; s < level_.size(); ++s) {
    if (level_[s] && !in_flight_[s] && !pending_[s]) {
      pending_[s] = true;
      latched = true;
    }
  }
  return latched;
}

u32 Plic::best_pending() const {
  u32 best = 0;
  u32 best_prio = threshold_;
  for (u32 s = 1; s < pending_.size(); ++s) {
    if (pending_[s] && enable_[s] && priority_[s] > best_prio) {
      best = s;
      best_prio = priority_[s];
    }
  }
  return best;
}

bool Plic::eip() const { return best_pending() != 0; }

u32 Plic::read_reg(Addr addr) {
  const Addr off = addr & 0x00FF'FFFF;
  if (off >= kPriorityBase && off < kPriorityBase + 4 * priority_.size()) {
    return priority_[off / 4];
  }
  if (off >= kPendingBase && off < kPendingBase + 0x80) {
    const u32 word = static_cast<u32>((off - kPendingBase) / 4);
    u32 v = 0;
    for (u32 b = 0; b < 32; ++b) {
      const u32 s = word * 32 + b;
      if (s < pending_.size() && pending_[s]) v |= (1u << b);
    }
    return v;
  }
  if (off >= kEnableBase && off < kEnableBase + 0x80) {
    const u32 word = static_cast<u32>((off - kEnableBase) / 4);
    u32 v = 0;
    for (u32 b = 0; b < 32; ++b) {
      const u32 s = word * 32 + b;
      if (s < enable_.size() && enable_[s]) v |= (1u << b);
    }
    return v;
  }
  if (off == kThreshold) return threshold_;
  if (off == kClaimComplete) {
    const u32 s = best_pending();
    if (s != 0) {
      pending_[s] = false;
      in_flight_[s] = true;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kIrqClaim, trace_src(),
                  sim_now(), s);
    }
    return s;
  }
  return 0;
}

void Plic::write_reg(Addr addr, u32 value) {
  const Addr off = addr & 0x00FF'FFFF;
  if (off >= kPriorityBase && off < kPriorityBase + 4 * priority_.size()) {
    priority_[off / 4] = value & 0x7;
    return;
  }
  if (off >= kEnableBase && off < kEnableBase + 0x80) {
    const u32 word = static_cast<u32>((off - kEnableBase) / 4);
    for (u32 b = 0; b < 32; ++b) {
      const u32 s = word * 32 + b;
      if (s != 0 && s < enable_.size()) enable_[s] = (value >> b) & 1;
    }
    return;
  }
  if (off == kThreshold) {
    threshold_ = value & 0x7;
    return;
  }
  if (off == kClaimComplete) {
    if (value < in_flight_.size() && in_flight_[value]) {
      in_flight_[value] = false;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kIrqComplete, trace_src(),
                  sim_now(), value);
    }
    return;
  }
}

}  // namespace rvcap::irq
