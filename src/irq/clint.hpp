// Core-local interruptor (CLINT) — RISC-V mtime/mtimecmp block.
//
// The paper measures every reconfiguration time with this component: the
// CLINT timer runs at 5 MHz (one tick per 20 core cycles), and the
// software timer modules read mtime before/after the transfer (§IV-B).
// The reproduction therefore reports times with the same 200 ns
// quantization the authors had.
//
// mtime is derived lazily from simulation time instead of counted by a
// per-cycle divider, so an idle CLINT can sleep under the scheduled
// kernel without freezing the clock. The derivation reproduces the
// legacy divider bit-exactly: a register read during the device's tick
// at cycle T observed floor((T+1)/20) (the divider advanced before the
// read was served), while host-side accessors between cycles at time N
// observe floor(N/20).
#pragma once

#include "axi/lite_slave.hpp"
#include "common/units.hpp"

namespace rvcap::irq {

class Clint : public axi::AxiLiteSlave {
 public:
  // Standard SiFive CLINT layout (offsets from the device base).
  static constexpr Addr kMsip = 0x0000;
  static constexpr Addr kMtimecmpLo = 0x4000;
  static constexpr Addr kMtimecmpHi = 0x4004;
  static constexpr Addr kMtimeLo = 0xBFF8;
  static constexpr Addr kMtimeHi = 0xBFFC;

  explicit Clint(std::string name);

  /// Raw 5 MHz counter value (backdoor for assertions).
  u64 mtime() const { return sim_now() / kCyclesPerClintTick; }
  bool timer_irq_pending() const { return mtime() >= mtimecmp_; }
  bool software_irq_pending() const { return msip_; }

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;

 private:
  /// mtime as seen by a bus read served during this device's tick.
  u64 mtime_at_tick() const {
    return (sim_now() + 1) / kCyclesPerClintTick;
  }

  u64 mtimecmp_ = ~u64{0};
  bool msip_ = false;
};

}  // namespace rvcap::irq
