// Core-local interruptor (CLINT) — RISC-V mtime/mtimecmp block.
//
// The paper measures every reconfiguration time with this component: the
// CLINT timer runs at 5 MHz (one tick per 20 core cycles), and the
// software timer modules read mtime before/after the transfer (§IV-B).
// The reproduction therefore reports times with the same 200 ns
// quantization the authors had.
#pragma once

#include "axi/lite_slave.hpp"
#include "common/units.hpp"

namespace rvcap::irq {

class Clint : public axi::AxiLiteSlave {
 public:
  // Standard SiFive CLINT layout (offsets from the device base).
  static constexpr Addr kMsip = 0x0000;
  static constexpr Addr kMtimecmpLo = 0x4000;
  static constexpr Addr kMtimecmpHi = 0x4004;
  static constexpr Addr kMtimeLo = 0xBFF8;
  static constexpr Addr kMtimeHi = 0xBFFC;

  explicit Clint(std::string name);

  /// Raw 5 MHz counter value (backdoor for assertions).
  u64 mtime() const { return mtime_; }
  bool timer_irq_pending() const { return mtime_ >= mtimecmp_; }
  bool software_irq_pending() const { return msip_; }

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;
  void device_tick() override;

 private:
  u64 mtime_ = 0;
  u64 mtimecmp_ = ~u64{0};
  bool msip_ = false;
  u32 divider_ = 0;  // core cycles since last 5 MHz tick
};

}  // namespace rvcap::irq
