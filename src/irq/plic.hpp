// Platform-level interrupt controller (PLIC).
//
// The RV-CAP DMA completion interrupts are "directly connected to the
// processor-level interrupt controller (PLIC) to support non-blocking
// mode during data transfer" (§III-B). Level-triggered gateway per
// source, priority/enable/threshold, claim/complete — single hart,
// M-mode context only, which is what the bare-metal driver uses.
#pragma once

#include <vector>

#include "axi/lite_slave.hpp"

namespace rvcap::irq {

class Plic : public axi::AxiLiteSlave {
 public:
  // Register map (offsets from device base), RISC-V PLIC spec layout.
  static constexpr Addr kPriorityBase = 0x0000'0000;  // 4 bytes/source
  static constexpr Addr kPendingBase = 0x0000'1000;
  static constexpr Addr kEnableBase = 0x0000'2000;
  static constexpr Addr kThreshold = 0x0020'0000;
  static constexpr Addr kClaimComplete = 0x0020'0004;

  Plic(std::string name, u32 num_sources);

  /// Drive a source's level (device-side). Source ids start at 1, as in
  /// the PLIC spec; source 0 means "no interrupt". Wakes the PLIC on a
  /// level change so the gateway can latch under the scheduled kernel.
  void set_source_level(u32 source, bool level);

  /// True when an enabled pending source exceeds the threshold — the
  /// external-interrupt line into the hart.
  bool eip() const;

  u32 num_sources() const { return static_cast<u32>(level_.size() - 1); }

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;
  bool device_tick() override;

 private:
  u32 best_pending() const;

  std::vector<bool> level_;     // raw device lines
  std::vector<bool> pending_;   // gateway latched
  std::vector<bool> in_flight_; // claimed, awaiting complete
  std::vector<u32> priority_;
  std::vector<bool> enable_;
  u32 threshold_ = 0;
};

/// Handle a device uses to drive its interrupt line.
class IrqLine {
 public:
  IrqLine() = default;
  IrqLine(Plic* plic, u32 source) : plic_(plic), source_(source) {}

  void set(bool level) {
    if (plic_ != nullptr) plic_->set_source_level(source_, level);
  }
  bool connected() const { return plic_ != nullptr; }
  u32 source() const { return source_; }

 private:
  Plic* plic_ = nullptr;
  u32 source_ = 0;
};

}  // namespace rvcap::irq
