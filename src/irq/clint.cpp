#include "irq/clint.hpp"

namespace rvcap::irq {

Clint::Clint(std::string name) : AxiLiteSlave(std::move(name)) {}

u32 Clint::read_reg(Addr addr) {
  switch (addr & 0xFFFF) {
    case kMsip: return msip_ ? 1 : 0;
    case kMtimecmpLo: return static_cast<u32>(mtimecmp_);
    case kMtimecmpHi: return static_cast<u32>(mtimecmp_ >> 32);
    case kMtimeLo: return static_cast<u32>(mtime_at_tick());
    case kMtimeHi: return static_cast<u32>(mtime_at_tick() >> 32);
    default: return 0;
  }
}

void Clint::write_reg(Addr addr, u32 value) {
  switch (addr & 0xFFFF) {
    case kMsip: msip_ = (value & 1) != 0; break;
    case kMtimecmpLo:
      mtimecmp_ = (mtimecmp_ & ~u64{0xFFFFFFFF}) | value;
      break;
    case kMtimecmpHi:
      mtimecmp_ = (mtimecmp_ & 0xFFFFFFFF) | (u64{value} << 32);
      break;
    default: break;  // mtime itself is read-only in this SoC
  }
}

}  // namespace rvcap::irq
