#include "common/log.hpp"

#include <cstdio>

namespace rvcap {
namespace log_detail {

LogLevel& global_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel level, std::string_view msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = log_detail::global_level();
  log_detail::global_level() = level;
  return prev;
}

LogLevel get_log_level() { return log_detail::global_level(); }

}  // namespace rvcap
