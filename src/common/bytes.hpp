// Little-endian byte (un)packing helpers.
//
// The SoC bus, DDR model, FAT32 on-disk structures, and DMA descriptors
// are all little-endian (RISC-V and FAT are LE); bitstream *packets* are
// big-endian 32-bit words per the Xilinx configuration-format convention
// and use the _be variants.
#pragma once

#include <span>

#include "common/types.hpp"

namespace rvcap {

inline u16 load_le16(std::span<const u8> b) {
  return static_cast<u16>(b[0] | (u16{b[1]} << 8));
}

inline u32 load_le32(std::span<const u8> b) {
  return u32{b[0]} | (u32{b[1]} << 8) | (u32{b[2]} << 16) | (u32{b[3]} << 24);
}

inline u64 load_le64(std::span<const u8> b) {
  return u64{load_le32(b)} | (u64{load_le32(b.subspan(4))} << 32);
}

inline void store_le16(std::span<u8> b, u16 v) {
  b[0] = static_cast<u8>(v);
  b[1] = static_cast<u8>(v >> 8);
}

inline void store_le32(std::span<u8> b, u32 v) {
  b[0] = static_cast<u8>(v);
  b[1] = static_cast<u8>(v >> 8);
  b[2] = static_cast<u8>(v >> 16);
  b[3] = static_cast<u8>(v >> 24);
}

inline void store_le64(std::span<u8> b, u64 v) {
  store_le32(b, static_cast<u32>(v));
  store_le32(b.subspan(4), static_cast<u32>(v >> 32));
}

inline u32 load_be32(std::span<const u8> b) {
  return (u32{b[0]} << 24) | (u32{b[1]} << 16) | (u32{b[2]} << 8) | u32{b[3]};
}

inline void store_be32(std::span<u8> b, u32 v) {
  b[0] = static_cast<u8>(v >> 24);
  b[1] = static_cast<u8>(v >> 16);
  b[2] = static_cast<u8>(v >> 8);
  b[3] = static_cast<u8>(v);
}

/// Extract bit field [lo, lo+width) from a word.
inline constexpr u32 bits(u32 v, unsigned lo, unsigned width) {
  return (v >> lo) & ((width >= 32) ? ~u32{0} : ((u32{1} << width) - 1));
}

inline constexpr u64 bits64(u64 v, unsigned lo, unsigned width) {
  return (v >> lo) & ((width >= 64) ? ~u64{0} : ((u64{1} << width) - 1));
}

/// CRC-32 (IEEE 802.3, reflected) — integrity check for staged
/// bitstream images; incremental via the `crc` parameter (pass the
/// previous return value to continue, default for a fresh run).
inline constexpr u32 crc32(std::span<const u8> data, u32 crc = 0) {
  crc = ~crc;
  for (const u8 byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

}  // namespace rvcap
