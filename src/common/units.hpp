// Unit helpers: clock frequencies, cycle<->time conversion, byte sizes.
//
// The paper's SoC runs fully synchronous at 100 MHz (the ICAP maximum on
// 7-series devices); the CLINT real-time counter ticks at 5 MHz. All
// simulation time is kept in core-clock cycles and converted to
// microseconds / MB/s only at reporting boundaries.
#pragma once

#include "common/types.hpp"

namespace rvcap {

/// Core clock of the fully synchronous SoC design (Hz).
inline constexpr u64 kCoreClockHz = 100'000'000;

/// CLINT timer clock used by the paper to measure reconfiguration time.
inline constexpr u64 kClintClockHz = 5'000'000;

/// Core cycles per CLINT timer tick (100 MHz / 5 MHz).
inline constexpr u64 kCyclesPerClintTick = kCoreClockHz / kClintClockHz;

inline constexpr u64 KiB(u64 n) { return n * 1024; }
inline constexpr u64 MiB(u64 n) { return n * 1024 * 1024; }

/// Convert core cycles to microseconds at the 100 MHz core clock.
inline constexpr double cycles_to_us(Cycles c) {
  return static_cast<double>(c) * 1e6 / static_cast<double>(kCoreClockHz);
}

/// Convert core cycles to milliseconds.
inline constexpr double cycles_to_ms(Cycles c) {
  return static_cast<double>(c) * 1e3 / static_cast<double>(kCoreClockHz);
}

/// Throughput in MB/s (decimal megabytes, as used in the paper's tables)
/// for `bytes` transferred in `c` core cycles.
inline constexpr double throughput_mbps(u64 bytes, Cycles c) {
  if (c == 0) return 0.0;
  const double seconds = static_cast<double>(c) / static_cast<double>(kCoreClockHz);
  return static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace rvcap
