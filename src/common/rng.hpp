// Deterministic RNG for tests and workload generators.
//
// SplitMix64: tiny, fast, and fully reproducible across platforms —
// preferred over std::mt19937 for cross-platform determinism of the
// benchmark workloads (std distributions are not portable).
#pragma once

#include "common/types.hpp"

namespace rvcap {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) — bound must be nonzero.
  constexpr u64 next_below(u64 bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr u64 next_range(u64 lo, u64 hi) {
    return lo + next_below(hi - lo + 1);
  }

  constexpr u8 next_byte() { return static_cast<u8>(next() & 0xFF); }

  constexpr double next_double() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  u64 state_;
};

}  // namespace rvcap
