// Minimal leveled logger.
//
// Simulation components log through this instead of std::cerr directly so
// tests can silence or capture output. Not thread-safe by design: the
// simulation kernel is single-threaded (benchmark fan-out happens at the
// process level).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace rvcap {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
LogLevel& global_level();
void emit(LogLevel level, std::string_view msg);
}  // namespace log_detail

/// Set the global log threshold; returns the previous value.
LogLevel set_log_level(LogLevel level);
LogLevel get_log_level();

/// RAII guard that silences logging for a scope (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : prev_(set_log_level(level)) {}
  ~ScopedLogLevel() { set_log_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < log_detail::global_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_detail::emit(level, oss.str());
}

template <typename... Args>
void log_trace(Args&&... args) { log_at(LogLevel::kTrace, std::forward<Args>(args)...); }
template <typename... Args>
void log_debug(Args&&... args) { log_at(LogLevel::kDebug, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { log_at(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_warn(Args&&... args) { log_at(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_error(Args&&... args) { log_at(LogLevel::kError, std::forward<Args>(args)...); }

}  // namespace rvcap
