#include "common/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace rvcap {

std::string hexdump(std::span<const u8> data, Addr base) {
  std::string out;
  char line[96];
  for (usize off = 0; off < data.size(); off += 16) {
    int n = std::snprintf(line, sizeof line, "%08llx  ",
                          static_cast<unsigned long long>(base + off));
    out.append(line, static_cast<usize>(n));
    for (usize i = 0; i < 16; ++i) {
      if (off + i < data.size()) {
        n = std::snprintf(line, sizeof line, "%02x ", data[off + i]);
        out.append(line, static_cast<usize>(n));
      } else {
        out.append("   ");
      }
      if (i == 7) out.push_back(' ');
    }
    out.append(" |");
    for (usize i = 0; i < 16 && off + i < data.size(); ++i) {
      const u8 c = data[off + i];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  return out;
}

}  // namespace rvcap
