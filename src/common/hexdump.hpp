// Hexdump formatting for debug output and golden-file comparison in tests.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace rvcap {

/// Classic 16-bytes-per-line hexdump with ASCII gutter.
std::string hexdump(std::span<const u8> data, Addr base = 0);

}  // namespace rvcap
