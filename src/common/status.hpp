// Status codes returned by driver APIs and substrate operations.
//
// Mirrors the return-code style of the paper's C driver layer while
// remaining idiomatic C++ (enum class + helpers, no errno).
#pragma once

#include <string_view>

namespace rvcap {

enum class Status {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kDeviceBusy,
  kTimeout,
  kIoError,
  kCrcError,
  kProtocolError,   // malformed bitstream / bus protocol violation
  kNoSpace,
  kNotSupported,
  kDecoupled,       // access to a decoupled reconfigurable partition
  kUnavailable,     // source known-bad right now (open circuit breaker,
                    // link administratively down); retry later
  kInternal,
  // ---- reconfiguration-service request lifecycle ----
  kRejected,        // shed by admission control (queue saturated)
  kDeadlineMissed,  // deadline expired before the transfer could start
  kCancelled,       // client withdrew the request while queued
  kQuarantined,     // image failed pre-flight before; never re-staged
  kHang,            // watchdog declared the transfer wedged (no progress)
};

constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kInvalidArgument: return "invalid_argument";
    case Status::kOutOfRange: return "out_of_range";
    case Status::kNotFound: return "not_found";
    case Status::kAlreadyExists: return "already_exists";
    case Status::kDeviceBusy: return "device_busy";
    case Status::kTimeout: return "timeout";
    case Status::kIoError: return "io_error";
    case Status::kCrcError: return "crc_error";
    case Status::kProtocolError: return "protocol_error";
    case Status::kNoSpace: return "no_space";
    case Status::kNotSupported: return "not_supported";
    case Status::kDecoupled: return "decoupled";
    case Status::kUnavailable: return "unavailable";
    case Status::kInternal: return "internal";
    case Status::kRejected: return "rejected";
    case Status::kDeadlineMissed: return "deadline_missed";
    case Status::kCancelled: return "cancelled";
    case Status::kQuarantined: return "quarantined";
    case Status::kHang: return "hang";
  }
  return "unknown";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

}  // namespace rvcap
