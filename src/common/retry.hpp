// Shared bounded-retry policy with exponential backoff and jitter.
//
// Two very different call sites need the same discipline: the SPI-SD
// driver re-reading a block after a transient token/CRC fault, and the
// network fetcher re-requesting a chunk after a drop or corruption.
// Both want a budgeted attempt loop whose *decision* to keep trying is
// separate from *how long* to wait before the next try. RetryPolicy is
// the immutable knob set; RetrySchedule is the per-operation cursor.
//
// Backoff is the classic capped exponential: attempt n (n >= 2) waits
// base << (n - 2) cycles, clamped to `cap`, plus uniform jitter drawn
// from a SplitMix64 seeded by the caller. A base of 0 keeps today's
// tight-loop SD behaviour (retry immediately); jitter is expressed in
// permille of the computed delay so policies stay integer-only. All
// randomness comes from the caller-provided seed, so a retry schedule
// is exactly reproducible — the same determinism contract as
// sim::FaultInjector.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rvcap {

struct RetryPolicy {
  u32 max_attempts = 3;    // total tries including the first; 0 = none
  u64 backoff_base = 0;    // delay before attempt 2, in cycles
  u64 backoff_cap = 0;     // clamp for the exponential; 0 = no clamp
  u32 jitter_permille = 0; // extra uniform delay in [0, d*j/1000]
};

/// One operation's walk through a RetryPolicy. Usage:
///
///   RetrySchedule sched(policy, seed);
///   while (sched.next()) {
///     spend(sched.delay());           // 0 before the first attempt
///     if (try_once() == Status::kOk) break;
///   }
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy, u64 seed = 0)
      : policy_(policy), rng_(seed) {}

  /// Advance to the next attempt. Returns false once the attempt
  /// budget is spent; otherwise computes delay() for this attempt.
  bool next() {
    if (attempt_ >= policy_.max_attempts) return false;
    ++attempt_;
    delay_ = compute_delay();
    return true;
  }

  /// Backoff to spend *before* the attempt next() just granted.
  u64 delay() const { return delay_; }
  /// 1-based index of the current attempt (0 before the first next()).
  u32 attempt() const { return attempt_; }
  /// Attempts beyond the first that next() has granted so far.
  u32 retries() const { return attempt_ > 1 ? attempt_ - 1 : 0; }
  bool exhausted() const { return attempt_ >= policy_.max_attempts; }

 private:
  u64 compute_delay() {
    if (attempt_ <= 1 || policy_.backoff_base == 0) return 0;
    const u32 shift = attempt_ - 2;
    u64 d = policy_.backoff_base;
    // Saturate instead of shifting into UB past 63 doublings.
    if (shift >= 63 || d > (~u64{0} >> shift)) {
      d = ~u64{0};
    } else {
      d <<= shift;
    }
    if (policy_.backoff_cap != 0 && d > policy_.backoff_cap) {
      d = policy_.backoff_cap;
    }
    if (policy_.jitter_permille != 0) {
      const u64 span = d / 1000 * policy_.jitter_permille +
                       d % 1000 * policy_.jitter_permille / 1000;
      d += rng_.next_below(span + 1);
    }
    return d;
  }

  RetryPolicy policy_;
  SplitMix64 rng_;
  u32 attempt_ = 0;
  u64 delay_ = 0;
};

}  // namespace rvcap
