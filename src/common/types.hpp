// Fundamental scalar types and small utility aliases used across the
// whole RV-CAP code base.
#pragma once

#include <cstdint>
#include <cstddef>

namespace rvcap {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulation time, counted in core-clock cycles (100 MHz unless noted).
using Cycles = std::uint64_t;

/// A physical address on the SoC bus (64-bit address space).
using Addr = std::uint64_t;

}  // namespace rvcap
