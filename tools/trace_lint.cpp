// trace-lint: structural validator for the Chrome-trace JSON emitted by
// obs::write_chrome_trace (see tools/trace_schema.json for the contract).
//
//   trace-lint [--require=<track>]... <trace.json>
//
// Exits 0 when the file is well-formed JSON and satisfies the schema:
// a top-level "traceEvents" array whose entries carry ph/name/pid/tid,
// spans ("X") carry ts+dur, instants ("i") carry ts, and the required
// tracks are all present. With no --require flags the default set is
// ICAP, DMA and ReconfigService-or-IRQ (the reconfiguration path that
// `bench_micro --trace` captures); one or more --require=<track> flags
// replace that default so other capture modes can state their own
// contract (e.g. --require=Net for `bench_net --trace`). Exits 1 with
// a diagnostic otherwise. Self-contained on purpose: CI runs it with
// no JSON library in the image.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

// Minimal recursive-descent JSON parser. Accepts strict JSON; the
// error message carries the byte offset of the first violation.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!value(out)) {
      error = error_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing data at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(const char* word, JsonValue& out, JsonValue v) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail("bad literal");
      }
    }
    out = std::move(v);
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            out += text_.substr(pos_, 4);  // lint cares about shape only
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    try {
      out.v = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("unparsable number");
    }
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out.v = std::move(s);
        return true;
      }
      case 't': return literal("true", out, JsonValue{true});
      case 'f': return literal("false", out, JsonValue{false});
      case 'n': return literal("null", out, JsonValue{nullptr});
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) {
      out.v = std::move(obj);
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      obj.emplace(std::move(key), std::move(val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    out.v = std::move(obj);
    return true;
  }

  bool array(JsonValue& out) {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) {
      out.v = std::move(arr);
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      arr.push_back(std::move(val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    out.v = std::move(arr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

int complain(std::size_t index, const char* why) {
  std::fprintf(stderr, "trace-lint: event %zu: %s\n", index, why);
  return 1;
}

const JsonValue* field(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--require=", 0) == 0) {
      const std::string track = arg.substr(10);
      if (track.empty()) {
        std::fprintf(stderr, "trace-lint: --require needs a track name\n");
        return 2;
      }
      required.push_back(track);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;  // more than one positional: fall through to usage
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: trace-lint [--require=<track>]... <trace.json>\n");
    return 2;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace-lint: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  std::string error;
  if (!Parser(text).parse(root, error)) {
    std::fprintf(stderr, "trace-lint: %s: invalid JSON: %s\n", path,
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "trace-lint: top level is not an object\n");
    return 1;
  }
  const JsonValue* events = field(root.object(), "traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace-lint: missing \"traceEvents\" array\n");
    return 1;
  }

  std::set<std::string> tracks;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t index = 0;
  for (const JsonValue& ev : events->array()) {
    ++index;
    if (!ev.is_object()) return complain(index, "not an object");
    const JsonObject& o = ev.object();
    const JsonValue* ph = field(o, "ph");
    const JsonValue* name = field(o, "name");
    const JsonValue* pid = field(o, "pid");
    const JsonValue* tid = field(o, "tid");
    if (ph == nullptr || !ph->is_string()) {
      return complain(index, "missing string \"ph\"");
    }
    if (name == nullptr || !name->is_string()) {
      return complain(index, "missing string \"name\"");
    }
    if (pid == nullptr || !pid->is_number() || pid->number() < 1) {
      return complain(index, "missing positive \"pid\"");
    }
    if (tid == nullptr || !tid->is_number() || tid->number() < 0) {
      return complain(index, "missing \"tid\"");
    }
    const std::string& phase = ph->string();
    if (phase == "M") {
      if (name->string() == "process_name") {
        const JsonValue* args = field(o, "args");
        if (args == nullptr || !args->is_object()) {
          return complain(index, "process_name metadata without args");
        }
        const JsonValue* track = field(args->object(), "name");
        if (track == nullptr || !track->is_string()) {
          return complain(index, "process_name args without name");
        }
        tracks.insert(track->string());
      }
      continue;
    }
    const JsonValue* ts = field(o, "ts");
    if (ts == nullptr || !ts->is_number()) {
      return complain(index, "event without numeric \"ts\"");
    }
    if (phase == "X") {
      const JsonValue* dur = field(o, "dur");
      if (dur == nullptr || !dur->is_number()) {
        return complain(index, "span without numeric \"dur\"");
      }
      ++spans;
    } else if (phase == "i") {
      ++instants;
    } else {
      return complain(index, "unknown phase (expected M, X or i)");
    }
  }

  int failures = 0;
  auto require_track = [&](const char* a, const char* b) {
    if (tracks.count(a) != 0) return;
    if (b != nullptr && tracks.count(b) != 0) return;
    std::fprintf(stderr, "trace-lint: required track \"%s\"%s%s%s absent\n",
                 a, b != nullptr ? " (or \"" : "", b != nullptr ? b : "",
                 b != nullptr ? "\")" : "");
    ++failures;
  };
  if (required.empty()) {
    require_track("ICAP", nullptr);
    require_track("DMA", nullptr);
    require_track("ReconfigService", "IRQ");
  } else {
    for (const std::string& track : required) {
      require_track(track.c_str(), nullptr);
    }
  }
  if (spans == 0) {
    std::fprintf(stderr, "trace-lint: no \"X\" duration spans\n");
    ++failures;
  }
  if (instants == 0) {
    std::fprintf(stderr, "trace-lint: no \"i\" instant events\n");
    ++failures;
  }
  if (failures != 0) return 1;

  std::printf("trace-lint: %s OK (%zu events, %zu spans, %zu instants, "
              "%zu tracks)\n",
              path, events->array().size(), spans, instants,
              tracks.size());
  return 0;
}
