// rvcap-pbit: host-side partial-bitstream utility.
//
// The offline companion to the library — what you would run on a build
// machine to prepare SD-card content:
//
//   rvcap-pbit generate  <out.pb> [--device kintex7|artix7] [--rm-id N]
//                        [--name S] [--sparse] [--row R]
//   rvcap-pbit inspect   <file.pb>
//   rvcap-pbit compress  <in.pb> <out.pbz>
//   rvcap-pbit decompress<in.pbz> <out.pb>
//   rvcap-pbit relocate  <in.pb> <out.pb> --row R
//                        (retarget the case-study window to another row)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bitstream/compress.hpp"
#include "common/bytes.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/relocate.hpp"
#include "fabric/geometry.hpp"

using namespace rvcap;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rvcap-pbit generate <out.pb> [--device kintex7|artix7]\n"
      "             [--rm-id N] [--name S] [--sparse] [--row R]\n"
      "  rvcap-pbit inspect <file.pb>\n"
      "  rvcap-pbit compress <in.pb> <out.pbz>\n"
      "  rvcap-pbit decompress <in.pbz> <out.pb>\n"
      "  rvcap-pbit relocate <in.pb> <out.pb> --row R [--device ...]\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<u8>* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return true;
}

bool write_file(const std::string& path, std::span<const u8> data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return f.good();
}

fabric::DeviceGeometry pick_device(const std::string& name) {
  if (name == "artix7") return fabric::DeviceGeometry::artix7_100t();
  return fabric::DeviceGeometry::kintex7_325t();
}

fabric::Partition window_partition(const fabric::DeviceGeometry& dev,
                                   u32 row) {
  std::vector<fabric::Partition::ColumnRef> cols;
  const u32 start = dev.accel_window_start();
  for (u32 c = start; c < start + 13; ++c) cols.push_back({row, c});
  return fabric::Partition("RP_row" + std::to_string(row), std::move(cols));
}

struct Args {
  std::vector<std::string> positional;
  std::string device = "kintex7";
  std::string name = "module";
  u32 rm_id = 1;
  u32 row = ~0u;
  bool sparse = false;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (s == "--device") {
      const char* v = next();
      if (v == nullptr) return false;
      a->device = v;
    } else if (s == "--rm-id") {
      const char* v = next();
      if (v == nullptr) return false;
      a->rm_id = static_cast<u32>(std::strtoul(v, nullptr, 0));
    } else if (s == "--name") {
      const char* v = next();
      if (v == nullptr) return false;
      a->name = v;
    } else if (s == "--row") {
      const char* v = next();
      if (v == nullptr) return false;
      a->row = static_cast<u32>(std::strtoul(v, nullptr, 0));
    } else if (s == "--sparse") {
      a->sparse = true;
    } else if (!s.empty() && s[0] == '-') {
      return false;
    } else {
      a->positional.push_back(s);
    }
  }
  return true;
}

int cmd_generate(const Args& a) {
  if (a.positional.size() != 1) return usage();
  const auto dev = pick_device(a.device);
  const u32 row = (a.row == ~0u) ? dev.rows() / 2 : a.row;
  if (row >= dev.rows()) {
    std::fprintf(stderr, "row %u out of range (device has %u rows)\n", row,
                 dev.rows());
    return 1;
  }
  const auto rp = window_partition(dev, row);
  const auto pbit = bitstream::generate_partial_bitstream(
      dev, rp, {a.rm_id, a.name},
      a.sparse ? bitstream::FrameFill::kSparse
               : bitstream::FrameFill::kHashed);
  if (!write_file(a.positional[0], pbit)) {
    std::perror("write");
    return 1;
  }
  std::printf("%s: %zu bytes, device %s, partition %s (%u frames), "
              "rm_id %u\n",
              a.positional[0].c_str(), pbit.size(), dev.name().c_str(),
              rp.name().c_str(), rp.frame_count(dev), a.rm_id);
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.positional.size() != 1) return usage();
  std::vector<u8> data;
  if (!read_file(a.positional[0], &data)) {
    std::perror("read");
    return 1;
  }
  // Compressed container?
  if (data.size() >= 4 &&
      load_be32(std::span<const u8>(data).first(4)) ==
          bitstream::kCompressMagic) {
    std::vector<u8> raw;
    if (!ok(bitstream::decompress_bitstream(data, &raw))) {
      std::printf("RVZ0 container, but the payload is corrupt\n");
      return 1;
    }
    std::printf("RVZ0 compressed container: %zu -> %zu bytes (%.2fx)\n",
                data.size(), raw.size(),
                bitstream::compression_ratio(raw.size(), data.size()));
    data = std::move(raw);
  }
  bitstream::ParsedBitstream parsed;
  if (!ok(bitstream::parse_bitstream(data, &parsed))) {
    std::printf("not a valid partial bitstream\n");
    return 1;
  }
  std::printf("words: %u   payload: %u (%u frames)\n", parsed.total_words,
              parsed.payload_words,
              parsed.payload_words / fabric::kFrameWords);
  std::printf("idcode: 0x%08X   crc: %s   desync: %s\n", parsed.idcode,
              parsed.crc_ok ? "ok" : "MISMATCH",
              parsed.saw_desync ? "yes" : "no");
  for (const auto& s : parsed.sections) {
    std::printf("  section @ row %u col %u: %u frames\n", s.start.row,
                s.start.column, s.frame_count);
  }
  return 0;
}

int cmd_compress(const Args& a, bool decompress) {
  if (a.positional.size() != 2) return usage();
  std::vector<u8> in, out;
  if (!read_file(a.positional[0], &in)) {
    std::perror("read");
    return 1;
  }
  const Status st = decompress ? bitstream::decompress_bitstream(in, &out)
                               : bitstream::compress_bitstream(in, &out);
  if (!ok(st)) {
    std::fprintf(stderr, "%s failed: %s\n",
                 decompress ? "decompress" : "compress",
                 std::string(to_string(st)).c_str());
    return 1;
  }
  if (!write_file(a.positional[1], out)) {
    std::perror("write");
    return 1;
  }
  std::printf("%zu -> %zu bytes (%.2fx)\n", in.size(), out.size(),
              decompress
                  ? bitstream::compression_ratio(out.size(), in.size())
                  : bitstream::compression_ratio(in.size(), out.size()));
  return 0;
}

int cmd_relocate(const Args& a) {
  if (a.positional.size() != 2 || a.row == ~0u) return usage();
  const auto dev = pick_device(a.device);
  if (a.row >= dev.rows()) {
    std::fprintf(stderr, "row %u out of range\n", a.row);
    return 1;
  }
  std::vector<u8> in;
  if (!read_file(a.positional[0], &in)) {
    std::perror("read");
    return 1;
  }
  bitstream::ParsedBitstream parsed;
  if (!ok(bitstream::parse_bitstream(in, &parsed)) ||
      parsed.sections.empty()) {
    std::fprintf(stderr, "not a valid partial bitstream\n");
    return 1;
  }
  const auto from = window_partition(dev, parsed.sections[0].start.row);
  const auto to = window_partition(dev, a.row);
  std::vector<u8> out;
  if (!ok(bitstream::relocate_bitstream(dev, from, to, in, &out))) {
    std::fprintf(stderr, "relocation failed (incompatible footprints?)\n");
    return 1;
  }
  if (!write_file(a.positional[1], out)) {
    std::perror("write");
    return 1;
  }
  std::printf("relocated row %u -> row %u (%zu bytes)\n",
              parsed.sections[0].start.row, a.row, out.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "compress") return cmd_compress(args, false);
  if (cmd == "decompress") return cmd_compress(args, true);
  if (cmd == "relocate") return cmd_relocate(args);
  return usage();
}
