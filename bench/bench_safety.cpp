// Extension study: safe-DPR services — configuration readback
// throughput, scrub-cycle cost, SEU detection/repair, and bitstream
// relocation across compatible partitions.
#include "bench_util.hpp"
#include "bitstream/relocate.hpp"
#include "driver/scrubber.hpp"

using namespace rvcap;

int main() {
  bench::print_header(
      "EXTENSION: safe DPR — readback, scrubbing, relocation");

  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::Scrubber scrubber(
      drv, soc.device(),
      driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000});

  // Load the Sobel module into RP0.
  const auto rec = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel);
  std::printf("\nmodule load: T_r = %.1f us (%.1f MB/s)\n", rec.tr_us,
              rec.mbps);

  // ---- readback throughput --------------------------------------------
  Cycles t0 = soc.sim().now();
  u32 got = 0;
  if (!ok(drv.readback_partition(soc.device(), soc.rp0(), 0x8C00'0000,
                                 0x8D00'0000, &got))) {
    return 1;
  }
  const Cycles rb_cycles = soc.sim().now() - t0;
  std::printf("partition readback: %u words in %.1f us = %.1f MB/s "
              "(same DMA path as configuration; the 400 MB/s port bound\n"
              "applies to reads too)\n",
              got, cycles_to_us(rb_cycles),
              throughput_mbps(u64{got} * 4, rb_cycles));

  // ---- scrub cycle cost -------------------------------------------------
  if (!ok(scrubber.snapshot(soc.rp0()))) return 1;
  t0 = soc.sim().now();
  bool clean = false;
  if (!ok(scrubber.scrub(soc.rp0(), &clean)) || !clean) return 1;
  const Cycles scrub_cycles = soc.sim().now() - t0;
  std::printf("\nscrub cycle (readback + software checksum): %.1f us per "
              "%u-frame partition\n",
              cycles_to_us(scrub_cycles),
              soc.rp0().frame_count(soc.device()));

  // ---- SEU detection + repair -------------------------------------------
  const auto addrs = soc.rp0().frame_addrs(soc.device());
  soc.config_memory().inject_upset(addrs[123], 45, 7);
  driver::ReconfigModule m{"", accel::kRmIdSobel,
                           soc::MemoryMap::kPbitStagingBase, rec.pbit_bytes};
  t0 = soc.sim().now();
  const Status repair = scrubber.scrub_and_repair(soc.rp0(), m);
  const Cycles repair_cycles = soc.sim().now() - t0;
  std::printf("SEU injected -> detected and repaired in %.1f us "
              "(scrub + full-partition reload + re-snapshot): %s\n",
              cycles_to_us(repair_cycles),
              ok(repair) ? "OK" : "FAILED");
  std::printf("scrubber stats: %llu scrubs, %llu detections, %llu repairs\n",
              static_cast<unsigned long long>(scrubber.stats().scrubs),
              static_cast<unsigned long long>(scrubber.stats().detections),
              static_cast<unsigned long long>(scrubber.stats().repairs));

  // ---- relocation ---------------------------------------------------------
  std::vector<fabric::Partition::ColumnRef> cols;
  for (u32 c = 37; c <= 49; ++c) cols.push_back({1, c});
  const fabric::Partition rp_alt("RP_ALT", cols);
  const usize h_alt = soc.add_partition(rp_alt);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdMedian, "median"});
  std::vector<u8> moved;
  t0 = soc.sim().now();
  if (!ok(bitstream::relocate_bitstream(soc.device(), soc.rp0(), rp_alt,
                                        pbit, &moved))) {
    return 1;
  }
  soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, moved);
  driver::ReconfigModule mm{"", accel::kRmIdMedian,
                            soc::MemoryMap::kPbitStagingBase,
                            static_cast<u32>(moved.size())};
  if (!ok(drv.init_reconfig_process(mm, driver::DmaMode::kInterrupt))) {
    return 1;
  }
  const bool reloc_ok =
      soc.config_memory().partition_state(h_alt).loaded &&
      soc.config_memory().partition_state(h_alt).rm_id ==
          accel::kRmIdMedian;
  std::printf("\nrelocation: Median module retargeted RP0(row3) -> "
              "RP_ALT(row1), loaded: %s (T_r = %.1f us)\n",
              reloc_ok ? "OK" : "FAILED",
              drv.last_timing().reconfig_us());

  bench::print_footnote();
  return (ok(repair) && reloc_ok) ? 0 : 1;
}
