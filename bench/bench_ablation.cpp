// Ablation harness for the design choices DESIGN.md calls out:
//   * DMA maximum burst length (the paper fixes 16),
//   * DMA read-pipeline depth (outstanding bursts),
//   * DDR first-access latency sensitivity,
//   * AXI_HWICAP write-FIFO depth (the paper resizes 64 -> 1024).
#include "bench_util.hpp"

using namespace rvcap;

int main() {
  bench::print_header("ABLATIONS: RV-CAP / AXI_HWICAP design parameters");

  // ---- DMA max burst length ----
  std::printf("\nDMA max burst length (paper: 16):\n");
  std::printf("%8s %12s %10s\n", "beats", "T_r (us)", "MB/s");
  for (const u32 burst : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    soc::SocConfig cfg;
    cfg.dma.max_burst_beats = burst;
    soc::ArianeSoc soc(cfg);
    driver::RvCapDriver drv(soc.cpu(), soc.plic());
    const auto r = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel);
    std::printf("%8u %12.1f %10.1f%s\n", burst, r.tr_us, r.mbps,
                r.loaded ? "" : "  LOAD-FAIL");
  }

  // ---- DMA outstanding read bursts ----
  std::printf("\nDMA outstanding read bursts (pipelining toward the MIG):\n");
  std::printf("%8s %12s %10s\n", "depth", "T_r (us)", "MB/s");
  for (const u32 depth : {1u, 2u, 4u, 8u}) {
    soc::SocConfig cfg;
    cfg.dma.max_outstanding = depth;
    soc::ArianeSoc soc(cfg);
    driver::RvCapDriver drv(soc.cpu(), soc.plic());
    const auto r = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel);
    std::printf("%8u %12.1f %10.1f\n", depth, r.tr_us, r.mbps);
  }

  // ---- DDR first-access latency ----
  std::printf("\nDDR first-access latency (cycles; default 16):\n");
  std::printf("%8s %12s %10s\n", "latency", "T_r (us)", "MB/s");
  for (const u32 lat : {4u, 8u, 16u, 32u, 64u, 128u}) {
    soc::SocConfig cfg;
    cfg.ddr.read_latency = lat;
    soc::ArianeSoc soc(cfg);
    driver::RvCapDriver drv(soc.cpu(), soc.plic());
    const auto r = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel);
    std::printf("%8u %12.1f %10.1f\n", lat, r.tr_us, r.mbps);
  }
  std::printf("(with 2+ outstanding bursts the latency pipeline-hides "
              "until it exceeds the burst service time)\n");

  // ---- HWICAP write-FIFO depth ----
  std::printf("\nAXI_HWICAP write-FIFO depth at unroll 16 (paper resizes "
              "64 -> 1024):\n");
  std::printf("%8s %12s %10s\n", "depth", "T_r (ms)", "MB/s");
  for (const u32 depth : {16u, 64u, 256u, 1024u, 4096u}) {
    soc::SocConfig cfg;
    cfg.with_hwicap = true;
    cfg.hwicap_fifo_depth = depth;
    soc::ArianeSoc soc(cfg);
    driver::HwIcapDriver drv(soc.cpu(), 16);
    const auto r = bench::run_hwicap_reconfig(soc, drv, accel::kRmIdSobel,
                                              16);
    std::printf("%8u %12.2f %10.2f%s\n", depth, r.tr_us / 1000.0, r.mbps,
                r.loaded ? "" : "  LOAD-FAIL");
  }
  std::printf("(a deeper FIFO amortizes the vacancy-poll/flush handshake; "
              "the keyhole store cost still dominates)\n");
  bench::print_footnote();
  return 0;
}
