// Networked delivery study: chunk-loss rate x cache sweep over the
// fault-tolerant acquisition path (DESIGN.md §12).
//
// Each cell drives queued reconfigurations through the full stack —
// ReconfigService -> DprManager -> BitstreamDelivery (verified cache ->
// NetFetcher over the lossy NetLink) — and reports the fetch success
// rate, the retry/timeout/CRC recovery work, and the p50/p99 T_fetch
// against the injected loss rate. A deliberately small staging-slot
// pool forces evictions so later activations re-acquire their image,
// which is where the cache-on/cache-off comparison shows. The headline
// cell queues 100 reconfigurations over a 5% drop + 1% corrupt link and
// must complete every one; the outage cell runs with the link hard
// down and must shed cleanly (every accepted request reaches a
// terminal state, none hangs). Emits BENCH_net.json (override with
// BENCH_NET_JSON) and exits non-zero if any accepted request ends
// non-terminal or a lossy-link fetch ultimately fails.
//
// `bench_net --trace[=path]` skips the sweep and instead captures one
// lossy delivery cell with the trace sink enabled, writing a
// Perfetto-loadable Chrome trace (default net_trace.json) whose Net
// track carries the frame/retry/breaker/cache events; CI lints it with
// `trace-lint --require=Net`.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "driver/bitstream_source.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/reconfig_service.hpp"
#include "net/net_fetcher.hpp"
#include "obs/export.hpp"
#include "sim/fault_injector.hpp"

using namespace rvcap;
namespace sites = sim::fault_sites;

namespace {

using driver::ReconfigService;
using State = ReconfigService::RequestState;

struct Cell {
  const char* label;
  double loss = 0.0;     // per-frame drop probability
  double corrupt = 0.0;  // per-data-frame bit-corrupt probability
  bool cache = true;     // attach the verified DDR cache
  bool link_down = false;
  u32 requests = 0;
};

struct CellResult {
  u32 offered = 0;
  u64 accepted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 shed = 0;
  u64 fetches_ok = 0;
  u64 fetches_failed = 0;
  u64 retries = 0;
  u64 timeouts = 0;
  u64 crc_errors = 0;
  u64 cache_hits = 0;
  u64 cache_poisoned = 0;
  u64 delivery_failures = 0;
  u64 breaker_trips = 0;
  double success_rate = 1.0;  // fetches_ok / attempted fetches
  double p50_fetch_kcyc = 0;  // successful-fetch latency percentiles
  double p99_fetch_kcyc = 0;
  bool all_terminal = true;
};

CellResult run_cell(const Cell& cell, u64 seed,
                    const char* trace_path = nullptr) {
  soc::SocConfig scfg;
  scfg.with_net = true;
  soc::ArianeSoc soc(scfg);
  if (trace_path != nullptr) {
    // The dense ICAP word stream of the final activation would roll the
    // default 32K ring past every Net event; keep the whole run.
    soc.sim().obs().sink().set_capacity(usize{1} << 21);
    soc.sim().obs().sink().set_enabled(true);
  }
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  sim::FaultInjector fi(seed);
  soc.attach_fault_injector(&fi);

  net::NetFetcher::Config fcfg;
  if (cell.link_down) {
    // The outage cell only measures the degradation machinery; short
    // timeouts keep the simulated dead air bounded.
    fcfg.response_timeout = 2'000;
    fcfg.retry = RetryPolicy{2, 500, 2'000, 0};
    fcfg.breaker_cooldown = 20'000;
  }
  net::NetFetcher fetcher(soc.cpu(), soc.net_link(), fcfg);
  driver::NetBitstreamSource net_src(fetcher);
  driver::BitstreamCache::Config ccfg;
  ccfg.base = 0x8E00'0000;  // clear of the manager's staging slots
  driver::BitstreamCache cache(soc.cpu(), ccfg);
  driver::BitstreamDelivery delivery(soc.cpu());
  delivery.set_primary(&net_src);
  if (cell.cache) delivery.attach_cache(&cache);
  delivery.set_net_stats(&fetcher);
  delivery.set_mailbox(soc::MemoryMap::kServiceRegs.base);

  // Two staging slots under three modules: the LRU thrash forces later
  // activations back through the delivery chain.
  driver::DprManager::Config mcfg;
  mcfg.num_slots = 2;
  driver::DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(),
                         nullptr, mcfg);
  mgr.set_fault_injector(&fi);
  mgr.attach_source(&delivery);

  const u32 rm_ids[] = {accel::kRmIdSobel, accel::kRmIdMedian,
                        accel::kRmIdGaussian};
  std::vector<std::string> mods;
  for (u32 i = 0; i < 3; ++i) {
    const std::string name = "m" + std::to_string(i);
    const std::string image = name + ".pbit";
    soc.net_server().add_image(
        image, bitstream::generate_partial_bitstream(
                   soc.device(), soc.rp0(), {rm_ids[i], name}));
    if (!ok(mgr.register_remote(name, rm_ids[i], image))) return {};
    mods.push_back(name);
  }

  if (cell.loss > 0.0) fi.arm(sites::kNetDrop, 0, cell.loss);
  if (cell.corrupt > 0.0) fi.arm(sites::kNetCorrupt, 0, cell.corrupt);
  if (cell.link_down) soc.net_link().set_down(true);

  ReconfigService::Config cfg;
  cfg.queue_capacity = 4;
  ReconfigService svc(mgr, cfg);

  SplitMix64 rng(seed ^ 0x0BEEF);
  CellResult r;
  constexpr u32 kBurst = 4;
  for (u32 submitted = 0; submitted < cell.requests;) {
    for (u32 i = 0; i < kBurst && submitted < cell.requests; ++i) {
      ReconfigService::ActivationRequest req;
      req.module = mods[rng.next_below(mods.size())];
      req.priority = static_cast<u32>(rng.next_below(8));
      req.client_id = submitted;
      req.deadline_mtime = 0;  // delivery time dominates; no deadlines
      svc.submit(req);
      ++submitted;
      ++r.offered;
    }
    svc.drain();
  }

  const auto& st = svc.stats();
  r.accepted = st.accepted;
  r.completed = st.completed;
  r.failed = st.failed;
  r.shed = st.shed + st.rejected_full;
  r.fetches_ok = fetcher.fetches_ok();
  r.fetches_failed = fetcher.fetches_failed();
  r.retries = fetcher.chunk_retries();
  r.timeouts = fetcher.chunk_timeouts();
  r.crc_errors = fetcher.chunk_crc_errors();
  r.cache_hits = cache.hits();
  r.cache_poisoned = cache.poisoned();
  r.delivery_failures = delivery.failures();
  r.breaker_trips = fetcher.breaker_trips();
  const u64 attempted = r.fetches_ok + r.fetches_failed;
  r.success_rate =
      attempted == 0
          ? 1.0
          : static_cast<double>(r.fetches_ok) / static_cast<double>(attempted);

  const auto& counters = soc.sim().obs().counters();
  const usize hi = [&] {
    for (usize i = 0; i < counters.histogram_count(); ++i) {
      if (counters.histogram_name(i) == "net.fetch.cycles") return i;
    }
    return counters.histogram_count();
  }();
  if (hi < counters.histogram_count()) {
    const obs::Histogram& h = counters.histogram_at(hi);
    r.p50_fetch_kcyc = static_cast<double>(h.percentile(0.50)) / 1000.0;
    r.p99_fetch_kcyc = static_cast<double>(h.percentile(0.99)) / 1000.0;
  }

  // Every accepted request must have reached exactly one terminal state.
  for (const auto& rec : svc.history()) {
    if (rec.state == State::kQueued || rec.state == State::kActive) {
      r.all_terminal = false;
    }
  }
  u64 terminal_of_accepted = st.completed + st.failed + st.shed +
                             st.cancelled;
  for (const auto& rec : svc.history()) {
    if (rec.state == State::kDeadlineMissed &&
        rec.done_mtime > rec.submit_mtime) {
      ++terminal_of_accepted;
    }
  }
  if (terminal_of_accepted != st.accepted) r.all_terminal = false;

  if (trace_path != nullptr) {
    if (!obs::write_chrome_trace(soc.sim().obs(), trace_path)) {
      std::printf("  ERROR: could not write %s\n", trace_path);
      r.all_terminal = false;
    } else {
      const obs::TraceSink& sink = soc.sim().obs().sink();
      std::printf("  wrote %s (%llu events emitted, %zu retained)\n",
                  trace_path,
                  static_cast<unsigned long long>(sink.total_events()),
                  sink.events().size());
    }
  }
  return r;
}

// ------------------------------------------------------------------
// --trace mode: capture one lossy delivery cell as a Chrome trace
// ------------------------------------------------------------------

int run_trace_capture(const char* path) {
  bench::print_header("Traced lossy networked delivery -> Chrome trace JSON");
  if (!obs::trace_compiled_in()) {
    std::printf("  built with RVCAP_NO_TRACE: event tracing is compiled "
                "out, nothing to capture\n");
    return 1;
  }
  const Cell cell{"trace-5%", 0.05, 0.01, /*cache=*/true,
                  /*link_down=*/false, 2};
  const CellResult r = run_cell(cell, 0xF7C4'CA9, path);
  if (!r.all_terminal || r.completed == 0 || r.fetches_failed != 0) {
    std::printf("  ERROR: traced delivery run did not complete cleanly\n");
    return 1;
  }
  std::printf("  %llu reconfigurations completed over the 5%% drop + 1%% "
              "corrupt link (%llu fetches, %llu chunk retries)\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.fetches_ok),
              static_cast<unsigned long long>(r.retries));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "net_trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }
  if (trace_path != nullptr) return run_trace_capture(trace_path);

  bench::print_header(
      "NET: chunk-loss x cache sweep over networked bitstream delivery");

  constexpr u64 kSeed = 0xF7C4'CA9;
  // BENCH_NET_QUICK trims the sweep for CI smoke runs; the recorded
  // EXPERIMENTS.md table comes from a full local run.
  const bool quick = std::getenv("BENCH_NET_QUICK") != nullptr;
  const u32 sweep = quick ? 6 : 12;
  const u32 headline = quick ? 12 : 100;

  const Cell cells[] = {
      {"clean", 0.00, 0.00, /*cache=*/false, false, sweep},
      {"loss-2%", 0.02, 0.004, /*cache=*/false, false, sweep},
      {"loss-5%", 0.05, 0.01, /*cache=*/false, false, sweep},
      {"loss-10%", 0.10, 0.02, /*cache=*/false, false, sweep},
      {"loss-5%+cache", 0.05, 0.01, /*cache=*/true, false, sweep},
      {"headline-5%", 0.05, 0.01, /*cache=*/true, false, headline},
      {"link-down", 0.00, 0.00, /*cache=*/true, /*link_down=*/true, 6},
  };

  std::printf("\n%14s %5s %5s | %4s %4s %4s | %4s %4s %4s %4s | %5s |"
              " %9s %9s\n",
              "cell", "loss", "cache", "off", "done", "fail", "f.ok",
              "f.no", "rtry", "crc", "rate", "p50(kcyc)", "p99(kcyc)");

  bool all_terminal = true;
  bool lossy_fetches_ok = true;
  std::string json = "{\n  \"cells\": [\n";
  bool first = true;
  for (const Cell& cell : cells) {
    const CellResult r = run_cell(cell, kSeed);
    if (!r.all_terminal) all_terminal = false;
    // On a lossy-but-up link every fetch must ultimately succeed; only
    // the scripted outage cell is allowed to fail deliveries.
    if (!cell.link_down && r.fetches_failed != 0) lossy_fetches_ok = false;
    std::printf("%14s %5.2f %5s | %4u %4llu %4llu | %4llu %4llu %4llu "
                "%4llu | %5.2f | %9.1f %9.1f\n",
                cell.label, cell.loss, cell.cache ? "yes" : "no", r.offered,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.fetches_ok),
                static_cast<unsigned long long>(r.fetches_failed),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.crc_errors),
                r.success_rate, r.p50_fetch_kcyc, r.p99_fetch_kcyc);
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"cell\": \"%s\", \"loss\": %.3f, \"corrupt\": %.3f, "
        "\"cache\": %s, \"link_down\": %s, \"offered\": %u, "
        "\"accepted\": %llu, \"completed\": %llu, \"failed\": %llu, "
        "\"shed\": %llu, \"fetches_ok\": %llu, \"fetches_failed\": %llu, "
        "\"chunk_retries\": %llu, \"chunk_timeouts\": %llu, "
        "\"chunk_crc_errors\": %llu, \"cache_hits\": %llu, "
        "\"delivery_failures\": %llu, \"breaker_trips\": %llu, "
        "\"fetch_success_rate\": %.3f, \"p50_fetch_kcycles\": %.1f, "
        "\"p99_fetch_kcycles\": %.1f}",
        first ? "" : ",\n", cell.label, cell.loss, cell.corrupt,
        cell.cache ? "true" : "false", cell.link_down ? "true" : "false",
        r.offered, static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.fetches_ok),
        static_cast<unsigned long long>(r.fetches_failed),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.crc_errors),
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.delivery_failures),
        static_cast<unsigned long long>(r.breaker_trips), r.success_rate,
        r.p50_fetch_kcyc, r.p99_fetch_kcyc);
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"all_accepted_terminal\": ";
  json += all_terminal ? "true" : "false";
  json += ",\n  \"lossy_link_fetches_all_succeeded\": ";
  json += lossy_fetches_ok ? "true" : "false";
  json += "\n}";

  const char* path = std::getenv("BENCH_NET_JSON");
  if (path == nullptr) path = "BENCH_net.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  }
  std::printf("\n--- JSON report ---\n%s\n", json.c_str());

  if (!all_terminal) {
    std::printf("\nERROR: an accepted request never reached a terminal "
                "state\n");
    return 1;
  }
  if (!lossy_fetches_ok) {
    std::printf("\nERROR: a fetch over a lossy-but-up link ultimately "
                "failed\n");
    return 1;
  }
  std::printf(
      "\nevery accepted reconfiguration reached a terminal state; on the\n"
      "lossy-but-up links every image was ultimately delivered intact\n"
      "(per-chunk CRC + bounded retry), and the hard outage degraded\n"
      "cleanly instead of wedging the queue.\n");
  bench::print_footnote();
  return 0;
}
