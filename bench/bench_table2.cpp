// Table II: comparison of resource utilization and reconfiguration
// throughput of state-of-the-art DPR controllers.
//
// The eight related-work rows run through calibrated parametric models
// (src/soa); the AXI_HWICAP-with-RISC-V and RV-CAP rows are measured on
// the full SoC simulation. The shape to verify: every DMA-fed ICAP
// controller sits just below the 400 MB/s ceiling, PCAP at ~128 MB/s,
// keyhole/software controllers orders of magnitude lower, and RV-CAP
// beats everything but Vipin's PCIe controller (by ~1.9 MB/s of API
// overhead, §IV-C).
#include "bench_util.hpp"
#include "resources/database.hpp"
#include "soa/controllers.hpp"

using namespace rvcap;

int main() {
  bench::print_header(
      "TABLE II: State-of-the-art DPR controllers (650892-byte transfer)");

  const auto db = resources::ResourceDb::paper_database();

  std::printf("\n%-28s %-10s %-8s %6s %6s %6s %11s %6s\n", "DPR Controller",
              "Processor", "Drivers", "LUTs", "FFs", "BRAMs",
              "MB/s", "MHz");

  auto row = [&](const char* name, const char* cpu_name, bool drivers,
                 const resources::ResourceVec& r, double mbps,
                 const char* tag, double paper_mbps) {
    std::printf("%-28s %-10s %-8s %6u %6u %6u %6.2f %-11s %4u  [%.2f]\n",
                name, cpu_name, drivers ? "yes" : "-", r.luts, r.ffs,
                r.brams, mbps, tag, 100, paper_mbps);
  };

  for (const auto& spec : soa::literature_controllers()) {
    const soa::DprControllerModel model(spec);
    row(spec.name.c_str(), spec.processor.c_str(), spec.custom_drivers,
        db.find(spec.key)->res, model.throughput_mbps(650892), "(lit.)",
        spec.reported_mbps);
  }

  // Measured rows.
  soc::SocConfig hw_cfg;
  hw_cfg.with_hwicap = true;
  soc::ArianeSoc hw_soc(hw_cfg);
  driver::HwIcapDriver hw_drv(hw_soc.cpu(), 16);
  const auto hw = bench::run_hwicap_reconfig(hw_soc, hw_drv,
                                             accel::kRmIdSobel, 16);
  row("Xilinx AXI_HWICAP (RISC-V)", "RV64GC", true,
      db.find("soa.axi_hwicap_rv64")->res, hw.mbps, "(model)", 8.23);

  soc::ArianeSoc rv_soc((soc::SocConfig()));
  driver::RvCapDriver rv_drv(rv_soc.cpu(), rv_soc.plic());
  const auto rv = bench::run_rvcap_reconfig(rv_soc, rv_drv,
                                            accel::kRmIdSobel);
  row("RV-CAP", "RV64GC", true, db.find("soa.rvcap")->res, rv.mbps,
      "(model)", 398.1);

  std::printf("\n[bracketed] = throughput the source paper reports\n");

  // Shape assertions of the comparison.
  bool shape_ok = true;
  shape_ok &= rv.mbps > 390.0 && rv.mbps < 400.0;      // near ceiling
  shape_ok &= rv.mbps > hw.mbps * 40;                  // DMA >> keyhole
  shape_ok &= hw.mbps > 7.0 && hw.mbps < 9.5;          // RISC-V keyhole
  std::printf("shape check (RV-CAP near 400 MB/s ceiling, ~48x over the\n"
              "vendor keyhole path): %s\n", shape_ok ? "OK" : "FAILED");
  bench::print_footnote();
  return shape_ok ? 0 : 1;
}
