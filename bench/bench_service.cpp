// Service study: offered load x fault rate sweep over the
// deadline-aware ReconfigService. Each cell submits bursts of
// randomized requests (module, priority, deadline) into the bounded
// queue, drains them through the self-healing pipeline under fault
// injection, and reports admission/degradation counters plus the
// p50/p99 request-to-active latency. Emits a JSON report and exits
// non-zero if any accepted request failed to reach a terminal state.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/reconfig_service.hpp"
#include "driver/scrubber.hpp"
#include "sim/fault_injector.hpp"

using namespace rvcap;
namespace sites = sim::fault_sites;

namespace {

using driver::ReconfigService;
using State = ReconfigService::RequestState;

struct CellResult {
  u32 offered = 0;        // requests submitted
  u64 accepted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 shed = 0;           // evicted + refused at saturation
  u64 deadline_missed = 0;
  u64 coalesced = 0;
  u64 hangs = 0;
  u64 recoveries = 0;
  double p50_us = 0;      // request-to-active latency percentiles
  double p99_us = 0;
  bool all_terminal = true;  // every accepted request reached an end state
};

double ticks_to_us(u64 ticks) {
  return static_cast<double>(ticks) * 1e6 / kClintClockHz;
}

double percentile(std::vector<u64>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const usize idx = static_cast<usize>(p * (v.size() - 1) + 0.5);
  return ticks_to_us(v[std::min(idx, v.size() - 1)]);
}

CellResult run_cell(u32 burst_size, u32 bursts, double fault_rate, u64 seed) {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::Scrubber scrubber(
      drv, soc.device(),
      driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000});
  sim::FaultInjector fi(seed);
  driver::DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(),
                         nullptr);
  soc.attach_fault_injector(&fi);
  mgr.set_fault_injector(&fi);
  mgr.attach_scrubber(&scrubber, &soc.rp0());
  // Bounded runs: skip the slow post-recovery readback scrub.
  driver::DprManager::RecoveryPolicy pol;
  pol.scrub_after_recovery = false;
  mgr.set_policy(pol);

  // Five pre-staged modules (every registered RM behavior): enough
  // distinct targets that a 12-request burst saturates the 4-deep
  // queue instead of coalescing away.
  std::vector<std::string> mods;
  const u32 rm_ids[] = {accel::kRmIdSobel, accel::kRmIdMedian,
                        accel::kRmIdGaussian, accel::kRmIdCipher,
                        accel::kRmIdFir};
  for (u32 i = 0; i < 5; ++i) {
    const std::string name = "m" + std::to_string(i);
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_ids[i], name});
    const Addr addr = 0x8800'0000 + u64{i} * 0x0020'0000;
    soc.ddr().poke(addr, pbit);
    if (!ok(mgr.register_staged(name, rm_ids[i], addr,
                                static_cast<u32>(pbit.size())))) {
      return {};
    }
    mods.push_back(name);
  }

  if (fault_rate > 0.0) {
    // Bounded single-shot-style plans so every cell converges; the
    // watchdog turns the stall into a fast hang + recovery.
    fi.arm(sites::kDmaMm2sSlvErr, 3, fault_rate);
    fi.arm(sites::kDmaMm2sStall, 1, fault_rate / 2);
    fi.arm(sites::kDmaMm2sEarlyIoc, 2, fault_rate / 2);
    fi.arm(sites::kIcapSyncLoss, 2, fault_rate / 2);
  }

  ReconfigService::Config cfg;
  cfg.queue_capacity = 4;
  cfg.watchdog_interval_ticks = 50;
  cfg.watchdog_stall_polls = 4;
  ReconfigService svc(mgr, cfg);

  SplitMix64 rng(seed ^ 0x5EED'F00D);
  CellResult r;
  for (u32 b = 0; b < bursts; ++b) {
    for (u32 i = 0; i < burst_size; ++i) {
      ReconfigService::ActivationRequest req;
      req.module = mods[rng.next_below(mods.size())];
      req.priority = static_cast<u32>(rng.next_below(8));
      req.client_id = b * burst_size + i;
      switch (rng.next_below(3)) {
        case 0: req.deadline_mtime = 0; break;
        case 1:
          // ~1-3 activation times out: met or missed depending on how
          // deep in the queue the request lands.
          req.deadline_mtime = drv.mtime() + 20'000 + rng.next_below(80'000);
          break;
        default:
          req.deadline_mtime = drv.mtime() + 20'000'000;
          break;
      }
      svc.submit(req);
      ++r.offered;
    }
    svc.drain();
  }

  const auto& st = svc.stats();
  r.accepted = st.accepted;
  r.completed = st.completed;
  r.failed = st.failed;
  r.shed = st.shed + st.rejected_full;
  r.deadline_missed = st.deadline_missed;
  r.coalesced = st.coalesced;
  r.hangs = st.hangs;
  r.recoveries = mgr.stats().recoveries;

  std::vector<u64> waits;
  for (const auto& rec : svc.history()) {
    if (rec.state == State::kQueued || rec.state == State::kActive) {
      r.all_terminal = false;  // a request was lost in flight
    }
    if (rec.start_mtime != 0) {
      waits.push_back(rec.start_mtime - rec.submit_mtime);
    }
  }
  // Terminal-state accounting must balance the admission counters too.
  u64 terminal_of_accepted = st.completed + st.failed + st.shed +
                             st.cancelled;
  for (const auto& rec : svc.history()) {
    if (rec.state == State::kDeadlineMissed &&
        rec.done_mtime > rec.submit_mtime) {
      ++terminal_of_accepted;  // missed at dispatch: was queued before
    }
  }
  if (terminal_of_accepted != st.accepted) r.all_terminal = false;

  r.p50_us = percentile(waits, 0.50);
  r.p99_us = percentile(waits, 0.99);
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "SERVICE: offered load x fault rate over the reconfig queue");

  constexpr u64 kSeed = 0xD15'7A7C;
  const u32 loads[] = {2, 6, 12};      // requests per burst (capacity 4)
  const double rates[] = {0.0, 0.3};
  constexpr u32 kBursts = 2;

  std::printf("\n%5s %6s | %7s %8s %6s %5s %7s %5s %5s | %9s %9s\n",
              "load", "fault", "offered", "accepted", "done", "shed",
              "missed", "coal", "hang", "p50(us)", "p99(us)");

  bool all_terminal = true;
  std::printf("\n");
  std::string json = "{\n  \"cells\": [\n";
  bool first = true;
  for (const u32 load : loads) {
    for (const double rate : rates) {
      const CellResult r = run_cell(load, kBursts, rate, kSeed);
      if (!r.all_terminal) all_terminal = false;
      std::printf("%5u %6.2f | %7u %8llu %6llu %5llu %7llu %5llu %5llu |"
                  " %9.1f %9.1f\n",
                  load, rate, r.offered,
                  static_cast<unsigned long long>(r.accepted),
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.deadline_missed),
                  static_cast<unsigned long long>(r.coalesced),
                  static_cast<unsigned long long>(r.hangs),
                  r.p50_us, r.p99_us);
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"load\": %u, \"fault_rate\": %.2f, "
                    "\"offered\": %u, \"accepted\": %llu, "
                    "\"completed\": %llu, \"shed\": %llu, "
                    "\"deadline_missed\": %llu, \"coalesced\": %llu, "
                    "\"hangs\": %llu, \"recoveries\": %llu, "
                    "\"p50_request_to_active_us\": %.1f, "
                    "\"p99_request_to_active_us\": %.1f}",
                    first ? "" : ",\n", load, rate, r.offered,
                    static_cast<unsigned long long>(r.accepted),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.shed),
                    static_cast<unsigned long long>(r.deadline_missed),
                    static_cast<unsigned long long>(r.coalesced),
                    static_cast<unsigned long long>(r.hangs),
                    static_cast<unsigned long long>(r.recoveries),
                    r.p50_us, r.p99_us);
      json += buf;
      first = false;
    }
  }
  json += "\n  ],\n  \"all_accepted_terminal\": ";
  json += all_terminal ? "true" : "false";
  json += "\n}";

  std::printf("\n--- JSON report ---\n%s\n", json.c_str());
  if (!all_terminal) {
    std::printf("\nERROR: an accepted request never reached a terminal "
                "state\n");
    return 1;
  }
  std::printf("\nevery accepted request reached exactly one terminal state\n"
              "(completed, failed, shed, cancelled, or deadline-missed);\n"
              "queue admission and the watchdog bounded every fault path.\n");
  bench::print_footnote();
  return 0;
}
