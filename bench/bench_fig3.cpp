// Fig. 3: reconfiguration time with respect to different RP sizes.
//
// Sweeps reconfigurable partitions of growing column count (so growing
// partial-bitstream size), reconfigures each through both controllers,
// and prints the time series. The paper's shape: time is linear in the
// bitstream size; RV-CAP's slope is the ICAP line rate (~400 MB/s,
// maxing out at 398.1 MB/s), the vendor keyhole path is ~48x slower.
#include "bench_util.hpp"

using namespace rvcap;

namespace {

/// Contiguous window of `n_cols` device columns in the middle row,
/// starting after the left IO/CLK columns.
fabric::Partition window_partition(const fabric::DeviceGeometry& dev,
                                   u32 n_cols) {
  std::vector<fabric::Partition::ColumnRef> cols;
  const u32 row = dev.rows() / 2;
  for (u32 c = 2; c < 2 + n_cols; ++c) cols.push_back({row, c});
  return fabric::Partition("RP_sweep" + std::to_string(n_cols),
                           std::move(cols));
}

}  // namespace

int main() {
  bench::print_header(
      "FIG. 3: Reconfiguration time vs. RP size (both controllers)");

  std::printf("\n%8s %10s | %12s %10s | %14s %10s\n", "columns",
              "pbit (KB)", "RV-CAP (us)", "(MB/s)", "AXI_HWICAP (us)",
              "(MB/s)");

  soc::ArianeSoc rv_soc((soc::SocConfig()));
  driver::RvCapDriver rv_drv(rv_soc.cpu(), rv_soc.plic());
  soc::SocConfig hw_cfg;
  hw_cfg.with_hwicap = true;
  soc::ArianeSoc hw_soc(hw_cfg);
  driver::HwIcapDriver hw_drv(hw_soc.cpu(), 16);

  double max_rv_mbps = 0;
  bool linear_ok = true;
  double prev_us_per_byte = -1;

  for (const u32 n_cols : {2u, 4u, 8u, 13u, 20u, 28u}) {
    const auto rp_rv = window_partition(rv_soc.device(), n_cols);
    const auto rp_hw = window_partition(hw_soc.device(), n_cols);
    const usize h_rv = rv_soc.add_partition(rp_rv);
    const usize h_hw = hw_soc.add_partition(rp_hw);

    const auto pbit = bitstream::generate_partial_bitstream(
        rv_soc.device(), rp_rv, {7, "sweep"});

    // RV-CAP path.
    rv_soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", 7, soc::MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    rv_drv.init_reconfig_process(m, driver::DmaMode::kInterrupt);
    const double rv_us = rv_drv.last_timing().reconfig_us();
    const bool rv_loaded =
        rv_soc.config_memory().partition_state(h_rv).loaded;

    // HWICAP path.
    hw_soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, pbit);
    hw_drv.init_reconfig_process(m);
    const double hw_us = hw_drv.last_timing().reconfig_us();
    const bool hw_loaded =
        hw_soc.config_memory().partition_state(h_hw).loaded;

    const double rv_mbps = pbit.size() / rv_us;
    const double hw_mbps = pbit.size() / hw_us;
    max_rv_mbps = std::max(max_rv_mbps, rv_mbps);
    std::printf("%8u %10.1f | %12.1f %10.1f | %14.0f %10.2f %s\n", n_cols,
                pbit.size() / 1000.0, rv_us, rv_mbps, hw_us, hw_mbps,
                (rv_loaded && hw_loaded) ? "" : "LOAD-FAIL");

    const double us_per_byte = rv_us / pbit.size();
    if (prev_us_per_byte > 0) {
      // Linearity: per-byte time converges (setup amortizes away).
      linear_ok &= us_per_byte < prev_us_per_byte * 1.05;
    }
    prev_us_per_byte = us_per_byte;
  }

  std::printf("\nmax RV-CAP throughput across sizes: %.1f MB/s "
              "[paper: 398.1 MB/s]\n", max_rv_mbps);
  const bool ok_shape = max_rv_mbps > 390 && max_rv_mbps < 400 && linear_ok;
  std::printf("shape check (linear growth, throughput saturating below the "
              "400 MB/s ceiling): %s\n", ok_shape ? "OK" : "FAILED");
  bench::print_footnote();
  return ok_shape ? 0 : 1;
}
