// Extension study: partial-bitstream compression (RT-ICAP-style, §II).
//
// Quantifies what inline decompression buys on an RV-CAP-class system:
// storage and fetch-bandwidth savings scale with bitstream sparsity,
// while reconfiguration time stays ICAP-bound (every frame word still
// crosses the 32-bit port) — i.e. compression helps exactly when the
// transport, not the port, is the bottleneck (RT-ICAP's situation; not
// RV-CAP's).
#include "bench_util.hpp"
#include "bitstream/compress.hpp"

using namespace rvcap;

int main() {
  bench::print_header(
      "EXTENSION: bitstream compression with inline decompression");

  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  std::printf("\n%-22s %12s %12s %8s %12s %12s\n", "module content",
              "raw (KB)", "packed (KB)", "ratio", "T_r raw(us)",
              "T_r comp(us)");

  bool all_ok = true;
  for (const auto fill : {bitstream::FrameFill::kHashed,
                          bitstream::FrameFill::kSparse}) {
    const bool sparse = fill == bitstream::FrameFill::kSparse;
    const auto raw = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"}, fill);
    std::vector<u8> packed;
    if (!ok(bitstream::compress_bitstream(raw, &packed))) return 1;

    // Raw transfer.
    soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, raw);
    driver::ReconfigModule m_raw{"", accel::kRmIdSobel,
                                 soc::MemoryMap::kPbitStagingBase,
                                 static_cast<u32>(raw.size())};
    all_ok &= ok(drv.init_reconfig_process(m_raw,
                                           driver::DmaMode::kInterrupt));
    const double tr_raw = drv.last_timing().reconfig_us();

    // Compressed transfer.
    soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, packed);
    driver::ReconfigModule m_z{"", accel::kRmIdSobel,
                               soc::MemoryMap::kPbitStagingBase,
                               static_cast<u32>(packed.size())};
    all_ok &= ok(drv.init_reconfig_process_compressed(
        m_z, driver::DmaMode::kInterrupt));
    const double tr_z = drv.last_timing().reconfig_us();
    all_ok &=
        soc.config_memory().partition_state(soc.rp0_handle()).loaded;

    std::printf("%-22s %12.1f %12.1f %7.2fx %12.1f %12.1f\n",
                sparse ? "sparse (routing-heavy)" : "dense (logic-heavy)",
                raw.size() / 1000.0, packed.size() / 1000.0,
                bitstream::compression_ratio(raw.size(), packed.size()),
                tr_raw, tr_z);
  }

  // Where compression DOES pay off: the (slow) SD-card load.
  const auto sparse_raw = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"},
      bitstream::FrameFill::kSparse);
  std::vector<u8> sparse_packed;
  (void)bitstream::compress_bitstream(sparse_raw, &sparse_packed);
  // SD SPI at 25 MHz moves ~2.6 MB/s through the driver: model the
  // load-time saving from the byte counts.
  const double sd_mbps = 2.6;
  std::printf("\nSD-card staging time at ~%.1f MB/s driver throughput:\n",
              sd_mbps);
  std::printf("  raw:        %6.1f ms\n",
              sparse_raw.size() / (sd_mbps * 1000.0));
  std::printf("  compressed: %6.1f ms  (plus storage saving of %.0f%%)\n",
              sparse_packed.size() / (sd_mbps * 1000.0),
              100.0 * (1.0 - double(sparse_packed.size()) /
                                 sparse_raw.size()));
  std::printf(
      "\nconclusion: T_r is ICAP-port-bound either way; compression cuts\n"
      "storage and fetch bandwidth (and SD staging time ~%.1fx), matching\n"
      "RT-ICAP's motivation on transport-limited systems.\n",
      bitstream::compression_ratio(sparse_raw.size(), sparse_packed.size()));
  bench::print_footnote();
  return all_ok ? 0 : 1;
}
