// Robustness study: fault-rate sweep over the self-healing
// reconfiguration pipeline. For each instrumented fault site, inject at
// increasing probability and report activation success rate, recovery
// rate, and the latency cost of a recovered activation versus a clean
// one. Deterministic: one fixed seed drives every injection decision.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/scrubber.hpp"
#include "sim/fault_injector.hpp"

using namespace rvcap;
namespace sites = sim::fault_sites;

namespace {

struct SweepResult {
  u32 ok_count = 0;
  u32 attempts = 0;
  u64 recoveries = 0;
  u64 exhausted = 0;
  double clean_us = 0;     // mean activation latency, no recovery needed
  double recovered_us = 0; // mean activation latency when recovery ran
};

SweepResult run_sweep(std::string_view site, double probability, u64 seed,
                      u32 activations) {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::Scrubber scrubber(
      drv, soc.device(),
      driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000});
  sim::FaultInjector fi(seed);
  driver::DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(),
                         nullptr);
  soc.attach_fault_injector(&fi);
  mgr.set_fault_injector(&fi);
  mgr.attach_scrubber(&scrubber, &soc.rp0());

  // A wedged DMA must time out in bounded simulated time.
  auto t = drv.timeouts();
  t.irq_wait_cycles = 3'000'000;
  drv.set_timeouts(t);

  struct Mod { const char* name; u32 id; Addr addr; };
  const Mod mods[] = {{"sobel", accel::kRmIdSobel, 0x8A00'0000},
                      {"median", accel::kRmIdMedian, 0x8B00'0000}};
  for (const Mod& m : mods) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {m.id, m.name});
    soc.ddr().poke(m.addr, pbit);
    if (!ok(mgr.register_staged(m.name, m.id, m.addr,
                                static_cast<u32>(pbit.size())))) {
      return {};
    }
  }

  // `probability` is per ACTIVATION: each activate() call is faulted
  // with chance p, by arming a single-shot fault at a random point of
  // the transfer. (Arming an unlimited per-query probability instead
  // would make word-granularity sites fire thousands of times per
  // bitstream and nothing would ever converge.)
  SplitMix64 decide(seed ^ 0xA5A5'5A5A);

  SweepResult r;
  u64 clean_cycles = 0, recovered_cycles = 0;
  u32 clean_n = 0, recovered_n = 0;
  for (u32 i = 0; i < activations; ++i) {
    fi.disarm(site);
    if (decide.next_double() < probability) {
      // DMA sites are queried once per transfer; ICAP sites once per
      // configuration word, so only those take a positional skip.
      const bool word_granular = site.rfind("icap.", 0) == 0;
      const u32 skip =
          word_granular ? static_cast<u32>(decide.next_below(50'000)) : 0;
      fi.arm(site, sim::FaultInjector::Plan{1, 1.0, skip});
    }
    const u64 recoveries_before = mgr.stats().recoveries;
    const Cycles t0 = soc.sim().now();
    const Status st = mgr.activate(mods[i % 2].name);
    const Cycles dt = soc.sim().now() - t0;
    ++r.attempts;
    if (ok(st)) ++r.ok_count;
    if (mgr.stats().recoveries > recoveries_before) {
      recovered_cycles += dt;
      ++recovered_n;
    } else if (ok(st)) {
      clean_cycles += dt;
      ++clean_n;
    }
  }
  r.recoveries = mgr.stats().recoveries;
  r.exhausted = mgr.stats().retries_exhausted;
  r.clean_us = clean_n ? cycles_to_us(clean_cycles) / clean_n : 0.0;
  r.recovered_us =
      recovered_n ? cycles_to_us(recovered_cycles) / recovered_n : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "ROBUSTNESS: fault sweep over self-healing reconfiguration");

  constexpr u64 kSeed = 0xB0B0'CAFE;
  constexpr u32 kActivations = 6;
  const std::string_view sweep_sites[] = {
      sites::kDmaMm2sSlvErr, sites::kDmaMm2sEarlyIoc, sites::kDmaMm2sStall,
      sites::kIcapSyncLoss,  sites::kIcapCrcCorrupt,
  };
  const double probabilities[] = {0.25, 0.75};

  std::printf("\n%-22s %6s | %8s %9s %9s | %10s %12s\n", "site", "p",
              "ok-rate", "recover", "exhaust", "clean(us)", "recover(us)");
  bool all_converged = true;
  for (const std::string_view site : sweep_sites) {
    for (const double p : probabilities) {
      const SweepResult r = run_sweep(site, p, kSeed, kActivations);
      std::printf("%-22s %6.2f | %7.0f%% %9llu %9llu | %10.1f %12.1f\n",
                  std::string(site).c_str(), p,
                  100.0 * r.ok_count / (r.attempts ? r.attempts : 1),
                  static_cast<unsigned long long>(r.recoveries),
                  static_cast<unsigned long long>(r.exhausted),
                  r.clean_us, r.recovered_us);
      // With a bounded per-site probability and 3 attempts per call the
      // sweep should essentially always converge to kOk.
      if (r.ok_count != r.attempts) all_converged = false;
    }
  }

  std::printf("\nevery activation above either succeeded first try or was\n"
              "healed by the recovery pipeline (DMA reset -> datapath abort\n"
              "-> partition blank -> retry), with the RP decoupled from the\n"
              "first fault until a verified-good configuration was active.\n");
  bench::print_footnote();
  return all_converged ? 0 : 1;
}
