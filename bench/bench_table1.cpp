// Table I: resources utilization of the RV-CAP controller compared to
// AXI_HWICAP on Xilinx Kintex-7, with measured reconfiguration
// throughput of both deployments.
#include "bench_util.hpp"
#include "resources/database.hpp"

using namespace rvcap;

int main() {
  bench::print_header(
      "TABLE I: Resource utilization and throughput, RV-CAP vs AXI_HWICAP");

  // ---- measured throughputs on the full SoC simulation ----
  soc::SocConfig rv_cfg;
  soc::ArianeSoc rv_soc(rv_cfg);
  driver::RvCapDriver rv_drv(rv_soc.cpu(), rv_soc.plic());
  const auto rv = bench::run_rvcap_reconfig(rv_soc, rv_drv,
                                            accel::kRmIdSobel);

  soc::SocConfig hw_cfg;
  hw_cfg.with_hwicap = true;
  soc::ArianeSoc hw_soc(hw_cfg);
  driver::HwIcapDriver hw_drv(hw_soc.cpu(), 16);
  const auto hw = bench::run_hwicap_reconfig(hw_soc, hw_drv,
                                             accel::kRmIdSobel, 16);

  const auto db = resources::ResourceDb::paper_database();
  const auto* rv_top = db.find("rvcap.rp_ctrl_axi");
  const auto* rv_dma = db.find("rvcap.dma");
  const auto* hw_axi = db.find("hwicap_deploy.axi_modules");
  const auto* hw_core = db.find("hwicap_deploy.axi_hwicap");

  std::printf("\n%-12s %-24s %7s %7s %6s  %s\n", "Controller", "Modules",
              "LUTs", "FFs", "BRAMs", "Throughput (MB/s)");
  std::printf("%-12s %-24s %7u %7u %6u  %8.1f (model)  [398.1 (paper)]\n",
              "RV-CAP", "RP cntrl. + AXI modules", rv_top->res.luts,
              rv_top->res.ffs, rv_top->res.brams, rv.mbps);
  std::printf("%-12s %-24s %7u %7u %6u\n", "", "DMA cntrl.",
              rv_dma->res.luts, rv_dma->res.ffs, rv_dma->res.brams);
  std::printf("%-12s %-24s %7u %7u %6u  %8.2f (model)  [8.23 (paper)]\n",
              "AXI_HWICAP", "HWICAP AXI modules", hw_axi->res.luts,
              hw_axi->res.ffs, hw_axi->res.brams, hw.mbps);
  std::printf("%-12s %-24s %7u %7u %6u\n", "with RV64GC", "AXI_HWICAP",
              hw_core->res.luts, hw_core->res.ffs, hw_core->res.brams);

  std::printf("\npartial bitstream: %u bytes (paper: 650892)\n",
              rv.pbit_bytes);
  std::printf("RV-CAP:      T_d=%.1f us, T_r=%.1f us, loaded=%d\n", rv.td_us,
              rv.tr_us, rv.loaded);
  std::printf("AXI_HWICAP:  T_r=%.0f us (%.2f ms), loaded=%d\n", hw.tr_us,
              hw.tr_us / 1000.0, hw.loaded);
  std::printf(
      "\nresource columns are the paper's Vivado synthesis reports\n"
      "(tagged 'paper' in the ResourceDb); throughputs are measured on\n"
      "the simulation.\n");
  bench::print_footnote();
  return (rv.loaded && hw.loaded) ? 0 : 1;
}
