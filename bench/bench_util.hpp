// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary reproduces one table or figure of the paper: it
// runs the full SoC simulation (or the calibrated literature models
// where the paper quotes related work) and prints the same rows the
// paper reports, annotated with the paper's numbers for side-by-side
// comparison. EXPERIMENTS.md records a captured run.
#pragma once

#include <cstdio>
#include <string>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "common/units.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap::bench {

struct ReconfigResult {
  double td_us = 0;
  double tr_us = 0;
  double mbps = 0;
  u32 pbit_bytes = 0;
  bool loaded = false;
};

/// Stage a partial bitstream for `rm_id` into DDR and run the full
/// Listing-1 flow on a fresh RV-CAP SoC.
inline ReconfigResult run_rvcap_reconfig(
    soc::ArianeSoc& soc, driver::RvCapDriver& drv, u32 rm_id,
    driver::DmaMode mode = driver::DmaMode::kInterrupt) {
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(),
      {rm_id, std::string(to_string(accel::rm_id_to_kind(rm_id)))});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", rm_id, staging,
                           static_cast<u32>(pbit.size())};
  const Status st = drv.init_reconfig_process(m, mode);
  ReconfigResult r;
  r.pbit_bytes = m.pbit_size;
  r.td_us = drv.last_timing().decision_us();
  r.tr_us = drv.last_timing().reconfig_us();
  r.mbps = m.pbit_size / r.tr_us;
  r.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return r;
}

/// Run the Listing-2 AXI_HWICAP flow with the given unroll factor on a
/// bitstream already staged in DDR.
inline ReconfigResult run_hwicap_reconfig(soc::ArianeSoc& soc,
                                          driver::HwIcapDriver& drv,
                                          u32 rm_id, u32 unroll) {
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(),
      {rm_id, std::string(to_string(accel::rm_id_to_kind(rm_id)))});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", rm_id, staging,
                           static_cast<u32>(pbit.size())};
  drv.set_unroll(unroll);
  const Status st = drv.init_reconfig_process(m);
  ReconfigResult r;
  r.pbit_bytes = m.pbit_size;
  r.tr_us = drv.last_timing().reconfig_us();
  r.mbps = m.pbit_size / r.tr_us;
  r.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return r;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_footnote() {
  std::printf(
      "\n(model) = measured on this reproduction's cycle-level simulation\n"
      "(paper) = value reported by the RV-CAP paper for comparison\n"
      "(lit.)  = value reported by the cited related work\n");
}

}  // namespace rvcap::bench
