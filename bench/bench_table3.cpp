// Table III: resources utilization of the full SoC with one RP, plus
// the Fig. 4 floorplan of the model device.
#include "bench_util.hpp"
#include "fabric/floorplan.hpp"
#include "resources/database.hpp"

using namespace rvcap;

int main() {
  bench::print_header("TABLE III: Full SoC resource utilization (one RP)");

  const auto db = resources::ResourceDb::paper_database();
  auto print_row = [&](const char* label, const char* key) {
    const auto* e = db.find(key);
    std::printf("%-28s %7u %7u %6u %5u\n", label, e->res.luts, e->res.ffs,
                e->res.brams, e->res.dsps);
  };

  std::printf("\n%-28s %7s %7s %6s %5s\n", "SoC Component", "LUTs", "FFs",
              "BRAMs", "DSPs");
  print_row("Full SoC", "soc.full");
  print_row("Ariane Core", "soc.ariane_core");
  print_row("Peripherals & Boot Mem.", "soc.peripherals_bootmem");
  print_row("RV-CAP controller", "soc.rvcap_controller");
  print_row("RP", "soc.rp");

  // Aggregation identity check (the table's own consistency).
  const std::string_view parts[] = {"soc.ariane_core",
                                    "soc.peripherals_bootmem",
                                    "soc.rvcap_controller", "soc.rp"};
  const bool sums = db.total(parts) == db.find("soc.full")->res;
  std::printf("\ncomponent rows sum to the Full SoC row: %s\n",
              sums ? "OK" : "FAILED");

  // RM rows with % of the RP (paper's parenthesised numbers).
  const auto rp = db.find("soc.rp")->res;
  std::printf("\n%-12s %7s %7s %6s %5s   (%% of RP: LUT/FF/BRAM/DSP)\n",
              "RMs", "LUTs", "FFs", "BRAMs", "DSPs");
  for (const char* key :
       {"soc.rm.gaussian", "soc.rm.median", "soc.rm.sobel"}) {
    const auto* e = db.find(key);
    const auto pct = resources::utilization_pct(e->res, rp);
    std::printf("%-12s %7u %7u %6u %5u   (%5.2f%% / %5.2f%% / %5.2f%% / "
                "%4.2f%%)\n",
                e->name.substr(7).c_str(), e->res.luts, e->res.ffs,
                e->res.brams, e->res.dsps, pct.luts, pct.ffs, pct.brams,
                pct.dsps);
  }

  // RV-CAP's share of the SoC (paper: 3.25% of LUTs+FFs).
  const auto* full = db.find("soc.full");
  const auto* ctrl = db.find("soc.rvcap_controller");
  const double share = 100.0 *
                       (ctrl->res.luts + ctrl->res.ffs) /
                       (full->res.luts + full->res.ffs);
  std::printf("\nRV-CAP share of SoC LUT+FF: %.2f%%  [paper: ~3.25%% of "
              "total SoC resources in terms of LUT and FFs]\n",
              share);

  // ---- Fig. 4: floorplan ----
  bench::print_header("FIG. 4: Full SoC floorplan (model XC7K325T)");
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp0 = fabric::case_study_partition(dev);
  // Static-region anchors (illustrative, as Fig. 4's annotations).
  const fabric::FloorplanRegion regions[] = {
      {"RP0 (reconfigurable partition)", &rp0, '#'},
  };
  std::printf("%s\n", fabric::render_floorplan(dev, regions).c_str());
  const auto total = dev.total_resources();
  std::printf("model device totals: %u LUT / %u FF / %u BRAM36 / %u DSP "
              "(XC7K325T: 203800 / 407600 / 445 / 840)\n",
              total.luts, total.ffs, total.brams, total.dsps);
  bench::print_footnote();
  return sums ? 0 : 1;
}
