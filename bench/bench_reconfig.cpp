// §IV-B detail harness: the headline timing numbers and the software
// optimization study — T_d / T_r with interrupt vs. blocking completion
// for RV-CAP, and the loop-unroll sweep for the AXI_HWICAP driver.
#include "bench_util.hpp"
#include "obs/link_probe.hpp"

using namespace rvcap;

int main() {
  bench::print_header("SECTION IV-B: Reconfiguration time measurements");

  // ---- RV-CAP, interrupt ("non-blocking") and polling modes ----
  soc::ArianeSoc rv_soc((soc::SocConfig()));
  driver::RvCapDriver rv_drv(rv_soc.cpu(), rv_soc.plic());
  obs::LinkProbe<u32> icap_probe("icap_port",
                                 rv_soc.icap().port());
  rv_soc.sim().add(&icap_probe);

  icap_probe.reset();
  const auto irq = bench::run_rvcap_reconfig(rv_soc, rv_drv,
                                             accel::kRmIdSobel,
                                             driver::DmaMode::kInterrupt);
  const double icap_util = icap_probe.utilization();
  const auto poll = bench::run_rvcap_reconfig(rv_soc, rv_drv,
                                              accel::kRmIdSobel,
                                              driver::DmaMode::kBlocking);

  std::printf("\nRV-CAP (650892-byte partial bitstream):\n");
  std::printf("  interrupt mode: T_d = %5.1f us   T_r = %7.1f us   "
              "%6.1f MB/s   [paper: T_d=18, T_r=1651]\n",
              irq.td_us, irq.tr_us, irq.mbps);
  std::printf("  blocking mode:  T_d = %5.1f us   T_r = %7.1f us   "
              "%6.1f MB/s\n",
              poll.td_us, poll.tr_us, poll.mbps);
  std::printf("  ICAP port utilization during the interrupt-mode "
              "transfer: %.1f%% of cycles (incl. T_d setup window)\n",
              100.0 * icap_util);

  // ---- AXI_HWICAP unroll sweep ----
  soc::SocConfig hw_cfg;
  hw_cfg.with_hwicap = true;
  soc::ArianeSoc hw_soc(hw_cfg);
  driver::HwIcapDriver hw_drv(hw_soc.cpu(), 16);

  std::printf("\nAXI_HWICAP with RV64GC — FIFO-store loop unrolling "
              "(§IV-B):\n");
  std::printf("%8s %12s %10s %12s\n", "unroll", "T_r (ms)", "MB/s",
              "vs. u=16");
  double mbps16 = 0;
  bool shape_ok = true;
  std::vector<std::pair<u32, double>> series;
  for (const u32 u : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto r = bench::run_hwicap_reconfig(hw_soc, hw_drv,
                                              accel::kRmIdSobel, u);
    if (u == 16) mbps16 = r.mbps;
    series.emplace_back(u, r.mbps);
    shape_ok &= r.loaded;
  }
  for (const auto& [u, mbps] : series) {
    std::printf("%8u %12.2f %10.2f %+11.1f%%", u,
                650892.0 / mbps / 1000.0, mbps,
                mbps16 > 0 ? 100.0 * (mbps - mbps16) / mbps16 : 0.0);
    if (u == 1) std::printf("   [paper: 4.16 MB/s, T_r=156.45 ms]");
    if (u == 16) std::printf("   [paper: 8.23 MB/s]");
    std::printf("\n");
  }

  // Shape: monotone gain, saturating <5% beyond u=16.
  for (usize i = 1; i < series.size(); ++i) {
    shape_ok &= series[i].second >= series[i - 1].second * 0.999;
  }
  shape_ok &= (series.back().second - mbps16) / mbps16 < 0.05;
  shape_ok &= irq.mbps > 390 && irq.mbps < 400;

  std::printf("\nshape check (unroll gains saturate <5%% past 16; RV-CAP "
              "within the ICAP ceiling): %s\n",
              shape_ok ? "OK" : "FAILED");
  std::printf("\nwhy unrolling matters: Ariane does not speculate past\n"
              "non-cacheable accesses, so each loop iteration adds a\n"
              "pipeline stall (timing model: %u cycles) that unrolling\n"
              "amortizes across %s stores.\n",
              cpu::CpuTimingModel{}.loop_overhead_cycles, "U");
  bench::print_footnote();
  return shape_ok ? 0 : 1;
}
