// Micro-benchmarks (google-benchmark) of the simulation substrate
// itself: how fast the kernel, interconnect, ICAP path and workload
// generators run on the host. These guard against performance
// regressions that would make the table harnesses impractically slow.
#include <benchmark/benchmark.h>

#include "accel/filters.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "icap/icap.hpp"
#include "mem/ddr.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rvcap;

void BM_FifoPushPop(benchmark::State& state) {
  sim::Fifo<u64> f(64);
  u64 v = 0;
  for (auto _ : state) {
    f.push(v++);
    benchmark::DoNotOptimize(f.pop());
  }
}
BENCHMARK(BM_FifoPushPop);

class Nop : public sim::Component {
 public:
  Nop() : Component("nop") {}
  void tick() override { benchmark::DoNotOptimize(count_++); }

 private:
  u64 count_ = 0;
};

void BM_SimulatorTick(benchmark::State& state) {
  sim::Simulator s;
  std::vector<std::unique_ptr<Nop>> comps;
  for (i64 i = 0; i < state.range(0); ++i) {
    comps.push_back(std::make_unique<Nop>());
    s.add(comps.back().get());
  }
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTick)->Arg(8)->Arg(64)->Arg(256);

void BM_DdrBurstRead(benchmark::State& state) {
  sim::Simulator s;
  mem::DdrController ddr("ddr");
  s.add(&ddr);
  for (auto _ : state) {
    ddr.port().ar.push(axi::AxiAr{0x1000, 15, 3});
    u32 got = 0;
    while (got < 16) {
      s.step();
      while (ddr.port().r.can_pop()) {
        ddr.port().r.pop();
        ++got;
      }
    }
  }
  state.SetBytesProcessed(state.iterations() * 16 * 8);
}
BENCHMARK(BM_DdrBurstRead);

void BM_IcapWordDecode(benchmark::State& state) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  fabric::ConfigMemory cfg(dev);
  icap::Icap icap("icap", cfg);
  sim::Simulator s;
  s.add(&icap);
  for (auto _ : state) {
    if (icap.port().can_push()) icap.port().push(bitstream::kNop);
    s.step();
  }
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_IcapWordDecode);

void BM_GeneratePartialBitstream(benchmark::State& state) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp = fabric::case_study_partition(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitstream::generate_partial_bitstream(dev, rp, {1, "bench"}));
  }
  state.SetBytesProcessed(state.iterations() * 650892);
}
BENCHMARK(BM_GeneratePartialBitstream);

void BM_GoldenFilter(benchmark::State& state) {
  const auto kind = static_cast<accel::FilterKind>(state.range(0));
  const accel::Image img = accel::make_test_image(512, 512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::apply_golden(kind, img));
  }
  state.SetBytesProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_GoldenFilter)->Arg(0)->Arg(1)->Arg(2);

void BM_ConfigCrc(benchmark::State& state) {
  bitstream::ConfigCrc crc;
  u32 w = 0;
  for (auto _ : state) {
    crc.update(2, w++);
    benchmark::DoNotOptimize(crc.value());
  }
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ConfigCrc);

void BM_SplitMix64(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_SplitMix64);

}  // namespace

BENCHMARK_MAIN();
