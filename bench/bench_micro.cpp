// Micro-benchmarks (google-benchmark) of the simulation substrate
// itself: how fast the kernel, interconnect, ICAP path and workload
// generators run on the host. These guard against performance
// regressions that would make the table harnesses impractically slow.
//
// After the google-benchmark suite, main() runs the kernel comparison:
// each workload executes once under Mode::kFlat and once under
// Mode::kScheduled, asserts cycle-level equivalence, prints the
// SimStats work-avoidance counters, and appends the wall-clock numbers
// to BENCH_kernel.json (the perf trajectory record). Exit status is
// non-zero if the two kernels diverge.
// `bench_micro --trace[=path]` skips the benchmark suite and instead
// captures a fully traced DMA reconfiguration: it writes a
// Perfetto-loadable Chrome trace (default trace.json), prints the
// counter/histogram dump, and reports the tracing overhead on the
// tick rate (EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "accel/filters.hpp"
#include "bench_util.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "icap/icap.hpp"
#include "mem/ddr.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rvcap;

void BM_FifoPushPop(benchmark::State& state) {
  sim::Fifo<u64> f(64);
  u64 v = 0;
  for (auto _ : state) {
    f.push(v++);
    benchmark::DoNotOptimize(f.pop());
  }
}
BENCHMARK(BM_FifoPushPop);

class Nop : public sim::Component {
 public:
  Nop() : Component("nop") {}
  bool tick() override {
    benchmark::DoNotOptimize(count_++);
    return true;  // free-running: measures raw dispatch, never sleeps
  }

 private:
  u64 count_ = 0;
};

void BM_SimulatorTick(benchmark::State& state) {
  sim::Simulator s;
  std::vector<std::unique_ptr<Nop>> comps;
  for (i64 i = 0; i < state.range(0); ++i) {
    comps.push_back(std::make_unique<Nop>());
    s.add(comps.back().get());
  }
  for (auto _ : state) s.step();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTick)->Arg(8)->Arg(64)->Arg(256);

void BM_DdrBurstRead(benchmark::State& state) {
  sim::Simulator s;
  mem::DdrController ddr("ddr");
  s.add(&ddr);
  for (auto _ : state) {
    ddr.port().ar.push(axi::AxiAr{0x1000, 15, 3});
    u32 got = 0;
    while (got < 16) {
      s.step();
      while (ddr.port().r.can_pop()) {
        ddr.port().r.pop();
        ++got;
      }
    }
  }
  state.SetBytesProcessed(state.iterations() * 16 * 8);
}
BENCHMARK(BM_DdrBurstRead);

void BM_IcapWordDecode(benchmark::State& state) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  fabric::ConfigMemory cfg(dev);
  icap::Icap icap("icap", cfg);
  sim::Simulator s;
  s.add(&icap);
  for (auto _ : state) {
    if (icap.port().can_push()) icap.port().push(bitstream::kNop);
    s.step();
  }
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_IcapWordDecode);

void BM_GeneratePartialBitstream(benchmark::State& state) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp = fabric::case_study_partition(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitstream::generate_partial_bitstream(dev, rp, {1, "bench"}));
  }
  state.SetBytesProcessed(state.iterations() * 650892);
}
BENCHMARK(BM_GeneratePartialBitstream);

void BM_GoldenFilter(benchmark::State& state) {
  const auto kind = static_cast<accel::FilterKind>(state.range(0));
  const accel::Image img = accel::make_test_image(512, 512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::apply_golden(kind, img));
  }
  state.SetBytesProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_GoldenFilter)->Arg(0)->Arg(1)->Arg(2);

void BM_ConfigCrc(benchmark::State& state) {
  bitstream::ConfigCrc crc;
  u32 w = 0;
  for (auto _ : state) {
    crc.update(2, w++);
    benchmark::DoNotOptimize(crc.value());
  }
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ConfigCrc);

void BM_SplitMix64(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_SplitMix64);

// ------------------------------------------------------------------
// Kernel comparison: flat vs. scheduled on SoC-scale workloads.
// ------------------------------------------------------------------

/// One workload execution under one kernel mode.
struct KernelRun {
  double seconds = 0;
  Cycles final_cycle = 0;
  sim::SimStats stats;
  double mbps = 0;   // dma_reconfig only
  bool loaded = true;
};

const char* mode_name(sim::Simulator::Mode m) {
  return m == sim::Simulator::Mode::kFlat ? "flat" : "scheduled";
}

/// Idle-heavy workload: a fully assembled SoC left alone for a long
/// stretch of simulated time (the shape of the deadline/service
/// benches, where the platform waits between reconfigurations).
KernelRun run_idle_wait(sim::Simulator::Mode mode, Cycles cycles) {
  soc::SocConfig cfg;
  cfg.sim_mode = mode;
  soc::ArianeSoc soc(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  soc.sim().run_cycles(cycles);
  const auto t1 = std::chrono::steady_clock::now();
  KernelRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.final_cycle = soc.sim().now();
  r.stats = soc.sim().stats();
  return r;
}

/// Busy workload: a complete Listing-1 reconfiguration (DMA + ICAP
/// streaming, interrupt completion). Little idle time, so this bounds
/// the scheduled kernel's bookkeeping overhead from above.
KernelRun run_dma_reconfig(sim::Simulator::Mode mode,
                           bool enable_trace = false) {
  soc::SocConfig cfg;
  cfg.sim_mode = mode;
  soc::ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  soc.sim().obs().sink().set_enabled(enable_trace);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel,
                                             driver::DmaMode::kInterrupt);
  const auto t1 = std::chrono::steady_clock::now();
  KernelRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.final_cycle = soc.sim().now();
  r.stats = soc.sim().stats();
  r.mbps = res.mbps;
  r.loaded = res.loaded;
  return r;
}

void print_run(const char* workload, sim::Simulator::Mode mode,
               const KernelRun& r) {
  std::printf(
      "  %-14s %-9s %9.3f s   cycle %12llu   ticks %12llu   "
      "skipped %12llu   wakeups %9llu   jumps %6llu\n",
      workload, mode_name(mode), r.seconds,
      static_cast<unsigned long long>(r.final_cycle),
      static_cast<unsigned long long>(r.stats.ticks_issued),
      static_cast<unsigned long long>(r.stats.ticks_skipped),
      static_cast<unsigned long long>(r.stats.wakeups),
      static_cast<unsigned long long>(r.stats.time_skip_jumps));
}

void json_run(std::FILE* f, const char* key, const KernelRun& r) {
  std::fprintf(f,
               "    \"%s\": {\"seconds\": %.6f, \"final_cycle\": %llu, "
               "\"ticks_issued\": %llu, \"ticks_skipped\": %llu, "
               "\"wakeups\": %llu, \"time_skip_jumps\": %llu, "
               "\"cycles_skipped\": %llu}",
               key, r.seconds,
               static_cast<unsigned long long>(r.final_cycle),
               static_cast<unsigned long long>(r.stats.ticks_issued),
               static_cast<unsigned long long>(r.stats.ticks_skipped),
               static_cast<unsigned long long>(r.stats.wakeups),
               static_cast<unsigned long long>(r.stats.time_skip_jumps),
               static_cast<unsigned long long>(r.stats.cycles_skipped));
}

int run_kernel_comparison() {
  using Mode = sim::Simulator::Mode;
  bench::print_header(
      "Kernel comparison: flat vs. activity-scheduled (BENCH_kernel.json)");

  // CI smoke runs (sanitizers, shared runners) shrink the idle window;
  // the recorded BENCH_kernel.json comes from a full local run.
  const bool quick = std::getenv("BENCH_KERNEL_QUICK") != nullptr;
  const Cycles idle_cycles = quick ? 200'000 : 5'000'000;

  const KernelRun idle_flat = run_idle_wait(Mode::kFlat, idle_cycles);
  const KernelRun idle_sched = run_idle_wait(Mode::kScheduled, idle_cycles);
  const KernelRun dma_flat = run_dma_reconfig(Mode::kFlat);
  const KernelRun dma_sched = run_dma_reconfig(Mode::kScheduled);

  print_run("idle_wait", Mode::kFlat, idle_flat);
  print_run("idle_wait", Mode::kScheduled, idle_sched);
  print_run("dma_reconfig", Mode::kFlat, dma_flat);
  print_run("dma_reconfig", Mode::kScheduled, dma_sched);

  const double idle_speedup =
      idle_sched.seconds > 0 ? idle_flat.seconds / idle_sched.seconds : 0;
  const double dma_speedup =
      dma_sched.seconds > 0 ? dma_flat.seconds / dma_sched.seconds : 0;

  const bool idle_match = idle_flat.final_cycle == idle_sched.final_cycle;
  const bool dma_match = dma_flat.final_cycle == dma_sched.final_cycle &&
                         dma_flat.mbps == dma_sched.mbps &&
                         dma_flat.loaded && dma_sched.loaded;

  std::printf("\n  idle_wait:    %.1fx speedup, cycle counts %s\n",
              idle_speedup, idle_match ? "MATCH" : "DIVERGED");
  std::printf("  dma_reconfig: %.2fx speedup, cycle counts + MB/s %s "
              "(%.1f MB/s both modes)\n",
              dma_speedup, dma_match ? "MATCH" : "DIVERGED",
              dma_sched.mbps);

  const char* path = std::getenv("BENCH_KERNEL_JSON");
  if (path == nullptr) path = "BENCH_kernel.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"bench_micro kernel comparison\",\n");
    std::fprintf(f, "  \"idle_wait\": {\n    \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(idle_cycles));
    json_run(f, "flat", idle_flat);
    std::fprintf(f, ",\n");
    json_run(f, "scheduled", idle_sched);
    std::fprintf(f, ",\n    \"speedup\": %.2f, \"cycles_match\": %s\n  },\n",
                 idle_speedup, idle_match ? "true" : "false");
    std::fprintf(f, "  \"dma_reconfig\": {\n");
    json_run(f, "flat", dma_flat);
    std::fprintf(f, ",\n");
    json_run(f, "scheduled", dma_sched);
    std::fprintf(f,
                 ",\n    \"mbps\": %.2f, \"speedup\": %.2f, "
                 "\"cycles_match\": %s\n  }\n}\n",
                 dma_sched.mbps, dma_speedup, dma_match ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  WARNING: could not open %s for writing\n", path);
  }

  if (!idle_match || !dma_match) {
    std::printf("\nKERNEL DIVERGENCE DETECTED — see DESIGN.md §9\n");
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------
// --trace mode: capture a Perfetto-loadable trace + overhead numbers
// ------------------------------------------------------------------

int run_trace_capture(const char* path) {
  bench::print_header("Traced DMA reconfiguration -> Chrome trace JSON");
  if (!obs::trace_compiled_in()) {
    std::printf("  built with RVCAP_NO_TRACE: event tracing is compiled "
                "out, nothing to capture\n");
    return 1;
  }

  // Overhead on the same workload: macros present but sink disabled
  // (the default build's steady state) vs. sink enabled and recording.
  const KernelRun off = run_dma_reconfig(sim::Simulator::Mode::kScheduled,
                                         /*enable_trace=*/false);
  const KernelRun on = run_dma_reconfig(sim::Simulator::Mode::kScheduled,
                                        /*enable_trace=*/true);
  const double rate_off =
      off.seconds > 0 ? static_cast<double>(off.final_cycle) / off.seconds : 0;
  const double rate_on =
      on.seconds > 0 ? static_cast<double>(on.final_cycle) / on.seconds : 0;
  std::printf("  compiled-in, disabled: %.1f Mcycle/s\n", rate_off / 1e6);
  std::printf("  enabled + recording:   %.1f Mcycle/s (%.1f%% of disabled)"
              "\n",
              rate_on / 1e6, rate_off > 0 ? 100.0 * rate_on / rate_off : 0);
  if (!off.loaded || !on.loaded) {
    std::printf("  ERROR: reconfiguration failed\n");
    return 1;
  }

  // The enabled run above threw its SoC away; capture a fresh traced
  // run and export everything it observed.
  soc::SocConfig cfg;
  soc::ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  soc.sim().obs().sink().set_enabled(true);
  const auto res = bench::run_rvcap_reconfig(soc, drv, accel::kRmIdSobel,
                                             driver::DmaMode::kInterrupt);
  if (!res.loaded) {
    std::printf("  ERROR: traced reconfiguration failed\n");
    return 1;
  }
  if (!obs::write_chrome_trace(soc.sim().obs(), path)) {
    std::printf("  ERROR: could not write %s\n", path);
    return 1;
  }
  const obs::TraceSink& sink = soc.sim().obs().sink();
  std::printf("  wrote %s (%llu events emitted, %zu retained)\n", path,
              static_cast<unsigned long long>(sink.total_events()),
              sink.events().size());
  std::printf("\n%s", obs::stats_text(soc.sim().obs()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace[=path] before google-benchmark sees the arg list.
  const char* trace_path = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (trace_path != nullptr) return run_trace_capture(trace_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_kernel_comparison();
}
