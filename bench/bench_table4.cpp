// Table IV: image-processing accelerator execution times at 100 MHz —
// T_ex = T_d + T_r + T_c per filter, 512x512 8-bit image, with output
// verified bit-exact against the golden software filters.
#include "bench_util.hpp"

using namespace rvcap;

int main() {
  bench::print_header(
      "TABLE IV: Adaptive image-processing case study (512x512, 8-bit)");

  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  const accel::Image img = accel::make_test_image(512, 512, 2026);
  soc.ddr().poke(soc::MemoryMap::kImageInBase, img.pixels);
  const u32 image_bytes = static_cast<u32>(img.pixels.size());

  struct Row {
    const char* name;
    u32 rm_id;
    double paper_tc;
    double paper_tex;
  };
  const Row rows[] = {
      {"Gaussian", accel::kRmIdGaussian, 606, 2275},
      {"Median", accel::kRmIdMedian, 598, 2267},
      {"Sobel", accel::kRmIdSobel, 588, 2257},
  };

  std::printf("\n%-10s %8s %8s %8s %9s   %s\n", "Accel.", "T_d(us)",
              "T_r(us)", "T_c(us)", "T_ex(us)",
              "paper: T_d=18, T_r=1651, T_c, T_ex");
  bool all_ok = true;
  for (const Row& row : rows) {
    const auto rec = bench::run_rvcap_reconfig(soc, drv, row.rm_id);
    all_ok &= rec.loaded;

    const u64 c0 = soc.sim().now();
    const Status st = drv.run_accelerator(
        soc::MemoryMap::kImageInBase, image_bytes,
        soc::MemoryMap::kImageOutBase, image_bytes,
        driver::DmaMode::kInterrupt);
    const double tc = cycles_to_us(soc.sim().now() - c0);
    all_ok &= ok(st);

    // Verify the hardware output against the golden filter.
    std::vector<u8> out(image_bytes);
    soc.ddr().peek(soc::MemoryMap::kImageOutBase, out);
    const accel::Image golden =
        accel::apply_golden(accel::rm_id_to_kind(row.rm_id), img);
    const bool exact = (out == golden.pixels);
    all_ok &= exact;

    std::printf("%-10s %8.1f %8.1f %8.1f %9.1f   [T_c=%.0f, T_ex=%.0f]  "
                "output %s\n",
                row.name, rec.td_us, rec.tr_us, tc,
                rec.td_us + rec.tr_us + tc, row.paper_tc, row.paper_tex,
                exact ? "bit-exact" : "MISMATCH");
  }

  std::printf(
      "\nT_d: software RM selection + fetch start;  T_r: DMA->ICAP\n"
      "transfer of the 650892-byte bitstream;  T_c: accelerator compute\n"
      "incl. DMA round trip. Reconfiguration dominates compute, as the\n"
      "paper observes.\n");
  bench::print_footnote();
  return all_ok ? 0 : 1;
}
