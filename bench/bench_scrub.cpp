// Scrub study: upset rate x scrub duty cycle over the frame-ECC scrub
// engine (DESIGN.md §10). Each cell runs a loaded partition under a
// seeded Poisson SEU process while the ScrubService walks the frames at
// the cell's duty cycle, and reports detection/repair counters plus the
// measured MTTD/MTTR. Emits BENCH_scrub.json and exits non-zero if any
// cell leaves an essential upset unrepaired past the repair deadline,
// or fails to converge at all.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/reconfig_service.hpp"
#include "driver/scrub_service.hpp"
#include "fabric/seu_process.hpp"
#include "sim/fault_injector.hpp"

using namespace rvcap;
namespace sites = sim::fault_sites;

namespace {

// Hardest upset an operator should ever wait on: one full-partition
// reload plus a couple of scrub passes. Anything older than this while
// still pending means the repair path lost an essential upset.
constexpr u64 kRepairDeadlineCycles = 60'000'000;

struct CellResult {
  u64 mean_cycles = 0;       // upset inter-arrival mean
  u32 frames_per_slice = 0;  // scrub duty cycle
  u64 landed = 0;
  u64 detections = 0;
  u64 repaired = 0;
  u64 self_cancelled = 0;
  u64 rewrites = 0;
  u64 reloads = 0;
  u64 passes = 0;
  double mttd_us = 0;
  double mttr_us = 0;
  u64 frames_per_sec = 0;
  Cycles final_cycle = 0;
  bool converged = false;       // budget fired out, nothing pending
  bool deadline_met = true;     // no essential upset aged past deadline
};

CellResult run_cell(u64 mean_cycles, u32 frames_per_slice, u32 upset_budget,
                    u64 seed) {
  CellResult r;
  r.mean_cycles = mean_cycles;
  r.frames_per_slice = frames_per_slice;

  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  sim::FaultInjector fi(seed);
  soc.attach_fault_injector(&fi);
  driver::DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(),
                         nullptr);
  mgr.set_fault_injector(&fi);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  soc.ddr().poke(0x8A00'0000, pbit);
  if (!ok(mgr.register_staged("sobel", accel::kRmIdSobel, 0x8A00'0000,
                              static_cast<u32>(pbit.size())))) {
    return r;
  }

  driver::ReconfigService svc(mgr, driver::ReconfigService::Config{});
  driver::ScrubService::Config sc;
  sc.cmd_staging = 0x8C00'0000;
  sc.rb_buffer = 0x8D00'0000;
  sc.frames_per_slice = frames_per_slice;
  driver::ScrubService scrub(drv, soc.config_memory(), svc, sc);
  scrub.watch_partition(soc.rp0_handle(), "sobel");
  scrub.install_upset_feed();

  driver::ReconfigService::ActivationRequest req;
  req.module = "sobel";
  req.priority = 1;
  if (!ok(svc.submit(req, nullptr))) return r;
  svc.drain();

  fabric::SeuProcess::Config pc;
  pc.mean_cycles = mean_cycles;
  pc.targets = {soc.rp0_handle()};
  fabric::SeuProcess seu("seu0", soc.config_memory(), fi, pc);
  soc.sim().add(&seu);
  fi.arm(sites::kSeuUpset, upset_budget);

  // Scrub at the cell's duty cycle until the budget has fired out and
  // every landed upset is resolved; each step advances sim time, so
  // wheel events get their chance to land. The step bound covers the
  // slowest cell (smallest slice, every upset escalating to a reload)
  // with a wide margin.
  const u32 max_steps = 400 * (805 / frames_per_slice + 1);
  for (u32 i = 0; i < max_steps; ++i) {
    if (fi.fires(sites::kSeuUpset) >= upset_budget &&
        scrub.pending_upsets() == 0) {
      r.converged = true;
      break;
    }
    if (!ok(scrub.step())) break;
    if (scrub.pending_essential() > 0 &&
        scrub.max_pending_age(soc.sim().now()) > kRepairDeadlineCycles) {
      r.deadline_met = false;
      break;
    }
  }

  r.landed = seu.landed();
  r.detections = scrub.stats().detections;
  r.repaired = scrub.stats().upsets_repaired;
  r.self_cancelled = scrub.stats().upsets_self_cancelled;
  r.rewrites = scrub.stats().frame_rewrites;
  r.reloads = scrub.stats().partition_reloads;
  r.passes = scrub.stats().passes;
  r.mttd_us = cycles_to_us(
      static_cast<Cycles>(scrub.mean_mttd_cycles()));
  r.mttr_us = cycles_to_us(
      static_cast<Cycles>(scrub.mean_mttr_cycles()));
  r.frames_per_sec = scrub.stats().last_pass_frames_per_sec;
  r.final_cycle = soc.sim().now();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "SCRUB: upset rate x duty cycle over the frame-ECC scrub engine");

  constexpr u64 kSeed = 0x5C12'0B5E;
  constexpr u32 kBudget = 6;  // upsets per cell
  const u64 rates[] = {20'000, 120'000};    // mean cycles between upsets
  const u32 slices[] = {32, 128, 805};      // frames scrubbed per step

  std::printf("\n%9s %6s | %6s %6s %6s %5s %5s %6s | %9s %9s %8s\n",
              "mean_cyc", "slice", "landed", "detect", "repair", "rewr",
              "reload", "passes", "mttd(us)", "mttr(us)", "frames/s");

  bool all_ok = true;
  std::string json = "{\n  \"bench\": \"bench_scrub upset rate x duty "
                     "cycle\",\n  \"cells\": [\n";
  bool first = true;
  for (const u64 rate : rates) {
    for (const u32 slice : slices) {
      const CellResult r = run_cell(rate, slice, kBudget, kSeed);
      if (!r.converged || !r.deadline_met) all_ok = false;
      std::printf("%9llu %6u | %6llu %6llu %6llu %5llu %5llu %6llu |"
                  " %9.1f %9.1f %8llu%s\n",
                  static_cast<unsigned long long>(r.mean_cycles), r.frames_per_slice,
                  static_cast<unsigned long long>(r.landed),
                  static_cast<unsigned long long>(r.detections),
                  static_cast<unsigned long long>(r.repaired),
                  static_cast<unsigned long long>(r.rewrites),
                  static_cast<unsigned long long>(r.reloads),
                  static_cast<unsigned long long>(r.passes),
                  r.mttd_us, r.mttr_us,
                  static_cast<unsigned long long>(r.frames_per_sec),
                  r.converged ? (r.deadline_met ? "" : "  DEADLINE")
                              : "  NO-CONVERGE");
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"mean_upset_cycles\": %llu, "
                    "\"frames_per_slice\": %u, \"landed\": %llu, "
                    "\"detections\": %llu, \"repaired\": %llu, "
                    "\"self_cancelled\": %llu, \"frame_rewrites\": %llu, "
                    "\"partition_reloads\": %llu, \"passes\": %llu, "
                    "\"mttd_us\": %.1f, \"mttr_us\": %.1f, "
                    "\"frames_per_sec\": %llu, \"final_cycle\": %llu, "
                    "\"converged\": %s, \"deadline_met\": %s}",
                    first ? "" : ",\n",
                    static_cast<unsigned long long>(r.mean_cycles),
                    r.frames_per_slice,
                    static_cast<unsigned long long>(r.landed),
                    static_cast<unsigned long long>(r.detections),
                    static_cast<unsigned long long>(r.repaired),
                    static_cast<unsigned long long>(r.self_cancelled),
                    static_cast<unsigned long long>(r.rewrites),
                    static_cast<unsigned long long>(r.reloads),
                    static_cast<unsigned long long>(r.passes),
                    r.mttd_us, r.mttr_us,
                    static_cast<unsigned long long>(r.frames_per_sec),
                    static_cast<unsigned long long>(r.final_cycle),
                    r.converged ? "true" : "false",
                    r.deadline_met ? "true" : "false");
      json += buf;
      first = false;
    }
  }
  json += "\n  ],\n  \"repair_deadline_cycles\": ";
  json += std::to_string(kRepairDeadlineCycles);
  json += ",\n  \"all_cells_ok\": ";
  json += all_ok ? "true" : "false";
  json += "\n}\n";

  const char* path = std::getenv("BENCH_SCRUB_JSON");
  if (path == nullptr) path = "BENCH_scrub.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  } else {
    std::printf("\nWARNING: could not open %s for writing\n", path);
  }

  if (!all_ok) {
    std::printf("\nERROR: a cell left an essential upset unrepaired past "
                "the deadline, or never converged\n");
    return 1;
  }
  std::printf("\nevery landed upset was repaired (or self-cancelled) within "
              "the deadline\nat every upset rate and duty cycle; faster duty "
              "cycles buy lower MTTD,\nwhile MTTR tracks the rewrite-vs-"
              "reload mix.\n");
  bench::print_footnote();
  return 0;
}
